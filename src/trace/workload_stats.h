// Statistical property measurement for workload generators (DESIGN.md §15).
//
// The generator test battery needs to measure what a trace actually did —
// rank-popularity fit, spike mass, affinity ratio, hot-set drift — and
// compare it to what the spec promised. These helpers are deliberately
// generator-agnostic: they take requests plus whatever ground truth the
// caller has (the rank->document mapping, the flash window), so the same
// machinery tests both the DSL and the legacy synthetic generator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace eacache {

/// Chi-squared goodness-of-fit of observed top-rank counts against a
/// Zipf(alpha) law over `universe` ranks. `rank_counts[r]` must be the
/// number of references to the document the generator placed at popularity
/// rank r — the test conditions on the top |rank_counts| ranks (expected
/// shares renormalized within them), so it needs the KNOWN rank mapping and
/// is unbiased (no sorting of observed counts).
struct ZipfFit {
  double chi_squared = 0.0;
  double critical = 0.0;       // acceptance threshold at the requested p
  std::uint64_t dof = 0;       // ranks used - 1 (after the min-expected cut)
  std::uint64_t ranks_used = 0;
  std::uint64_t total = 0;     // observations inside the ranks used
  bool accepted = false;       // chi_squared <= critical
};

/// p must be one of 0.95, 0.99, 0.999. Ranks whose expected count would fall
/// below 5 are dropped from the tail before computing the statistic.
[[nodiscard]] ZipfFit zipf_chi_squared(const std::vector<std::uint64_t>& rank_counts,
                                       double alpha, std::uint64_t universe,
                                       double p = 0.999);

/// Upper critical value of the chi-squared distribution with `dof` degrees
/// of freedom at probability p in {0.95, 0.99, 0.999} (Wilson-Hilferty
/// approximation — within a fraction of a percent for dof >= 3).
[[nodiscard]] double chi_squared_critical(std::uint64_t dof, double p);

/// Count references by popularity rank: result[r] = number of requests for
/// doc_of_rank[r] among the top `top` ranks. Chunk requests count toward
/// their base document's rank; the flash document is ignored.
[[nodiscard]] std::vector<std::uint64_t> count_by_rank(
    const Trace& trace, const std::vector<DocumentId>& doc_of_rank, std::uint64_t top);

/// Fraction of requests inside [from, to) that reference `document`
/// (chunk ids resolve to their base document first). 0 if the window is
/// empty of requests.
[[nodiscard]] double spike_mass(const Trace& trace, DocumentId document, TimePoint from,
                                TimePoint to);

/// Fraction of requests whose document already appeared among the same
/// user's previous `window` requests — the empirical session-affinity
/// signal. Requests by users seen fewer than 1 time before count as misses.
[[nodiscard]] double session_affinity_ratio(const Trace& trace, std::uint32_t window);

/// |a ∩ b| / |a| for two hot-set snapshots (a must be non-empty).
[[nodiscard]] double hot_set_overlap(const std::vector<DocumentId>& a,
                                     const std::vector<DocumentId>& b);

/// One bounded pass over a stream: everything the battery needs to check a
/// generator without materializing the trace. Memory is O(distinct ids).
struct StreamProfile {
  std::uint64_t requests = 0;
  std::uint64_t distinct_documents = 0;  // distinct ids (chunks counted per id)
  std::uint64_t chunk_requests = 0;
  std::uint64_t flash_requests = 0;
  Bytes total_bytes = 0;
  TimePoint first{};
  TimePoint last{};
  bool monotone = true;  // timestamps never regressed
};

[[nodiscard]] StreamProfile profile_stream(TraceSource& source);

}  // namespace eacache
