#include "trace/trace.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace eacache {

TraceStats compute_stats(std::span<const Request> requests) {
  TraceStats stats;
  stats.total_requests = requests.size();
  if (requests.empty()) return stats;

  std::unordered_map<DocumentId, Bytes> docs;
  std::unordered_set<UserId> users;
  stats.first_request = requests.front().at;
  stats.last_request = requests.front().at;
  for (const Request& r : requests) {
    stats.total_bytes += r.size;
    docs.emplace(r.document, r.size);
    users.insert(r.user);
    stats.first_request = std::min(stats.first_request, r.at);
    stats.last_request = std::max(stats.last_request, r.at);
  }
  stats.unique_documents = docs.size();
  stats.unique_users = users.size();
  for (const auto& [id, size] : docs) stats.unique_bytes += size;
  return stats;
}

bool is_time_ordered(std::span<const Request> requests) {
  return std::is_sorted(requests.begin(), requests.end(),
                        [](const Request& a, const Request& b) { return a.at < b.at; });
}

void sort_by_time(Trace& trace) {
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const Request& a, const Request& b) { return a.at < b.at; });
}

}  // namespace eacache
