#include "trace/squid_parser.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "common/hash.h"

namespace eacache {

namespace {

enum class LineResult { kParsed, kMalformed, kFiltered };

LineResult parse_line(const std::string& line, const SquidParseOptions& options,
                      Request& out, bool& coerced) {
  std::istringstream fields(line);
  std::string ts_token, elapsed_token, client, code_status, bytes_token, method, url;
  if (!(fields >> ts_token >> elapsed_token >> client >> code_status >> bytes_token >>
        method >> url)) {
    return LineResult::kMalformed;
  }

  char* end = nullptr;
  const double ts_seconds = std::strtod(ts_token.c_str(), &end);
  if (end != ts_token.c_str() + ts_token.size() || !std::isfinite(ts_seconds) ||
      ts_seconds < 0.0) {
    return LineResult::kMalformed;
  }
  const long long bytes = std::strtoll(bytes_token.c_str(), &end, 10);
  if (end != bytes_token.c_str() + bytes_token.size() || bytes < 0) {
    return LineResult::kMalformed;
  }

  // code/status, e.g. "TCP_MISS/200".
  const std::size_t slash = code_status.find('/');
  if (slash == std::string::npos || slash + 1 >= code_status.size()) {
    return LineResult::kMalformed;
  }
  const long status = std::strtol(code_status.c_str() + slash + 1, &end, 10);
  if (end != code_status.c_str() + code_status.size()) return LineResult::kMalformed;

  if (options.only_cacheable) {
    if (method != "GET") return LineResult::kFiltered;
    if (status < 200 || status >= 400) return LineResult::kFiltered;
  }

  out.at = kSimEpoch + Duration{std::llround(ts_seconds * 1000.0)};
  out.user = static_cast<UserId>(fnv1a64(client) & 0xffffffffu);
  out.document = fnv1a64(url);
  coerced = bytes == 0;
  out.size = coerced ? options.default_size : static_cast<Bytes>(bytes);
  return LineResult::kParsed;
}

}  // namespace

SquidParseResult parse_squid_log(std::istream& in, const SquidParseOptions& options) {
  SquidParseResult result;
  std::string line;
  while (std::getline(in, line)) {
    ++result.lines_read;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      ++result.lines_skipped;
      continue;
    }
    Request request;
    bool coerced = false;
    switch (parse_line(line, options, request, coerced)) {
      case LineResult::kMalformed:
        ++result.lines_skipped;
        break;
      case LineResult::kFiltered:
        ++result.lines_filtered;
        break;
      case LineResult::kParsed:
        if (coerced) ++result.zero_sizes_coerced;
        result.trace.requests.push_back(request);
        break;
    }
  }

  sort_by_time(result.trace);
  if (options.normalize_time && !result.trace.empty()) {
    const Duration shift = result.trace.requests.front().at - kSimEpoch;
    for (Request& request : result.trace.requests) request.at -= shift;
  }
  return result;
}

SquidParseResult parse_squid_log_file(const std::string& path,
                                      const SquidParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_squid_log_file: cannot open " + path);
  return parse_squid_log(in, options);
}

SquidLogSource::SquidLogSource(std::istream& in, const SquidParseOptions& options)
    : in_(&in), options_(options) {}

bool SquidLogSource::next(Request& out) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lines_read_;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      ++lines_skipped_;
      continue;
    }
    Request request;
    bool coerced = false;
    switch (parse_line(line, options_, request, coerced)) {
      case LineResult::kMalformed:
        ++lines_skipped_;
        continue;
      case LineResult::kFiltered:
        ++lines_filtered_;
        continue;
      case LineResult::kParsed:
        break;
    }
    if (coerced) ++zero_sizes_coerced_;
    if (!started_) {
      if (options_.normalize_time) shift_ = request.at - kSimEpoch;
      started_ = true;
    }
    request.at -= shift_;
    if (request.at < last_) {
      request.at = last_;  // clamp: streaming cannot sort (see header)
      ++clamped_timestamps_;
    }
    last_ = request.at;
    out = request;
    return true;
  }
  return false;
}

void SquidLogSource::reset() {
  in_->clear();
  in_->seekg(0);
  shift_ = Duration::zero();
  last_ = kSimEpoch;
  started_ = false;
  lines_read_ = 0;
  lines_skipped_ = 0;
  lines_filtered_ = 0;
  zero_sizes_coerced_ = 0;
  clamped_timestamps_ = 0;
}

}  // namespace eacache
