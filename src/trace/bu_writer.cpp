#include "trace/bu_writer.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace eacache {

void write_bu_log(std::ostream& out, std::span<const Request> requests,
                  const BuWriteOptions& options) {
  if (options.write_header_comment) {
    out << "# eacache trace export: <timestamp-s> <user> <url> <size-bytes>\n";
  }
  char line[160];
  for (const Request& request : requests) {
    const double seconds = to_seconds(request.at - kSimEpoch);
    std::snprintf(line, sizeof(line), "%.3f %s%u %s%" PRIu64 " %" PRIu64 "\n", seconds,
                  options.user_prefix.c_str(), request.user, options.url_prefix.c_str(),
                  request.document, request.size);
    out << line;
  }
}

void write_bu_log_file(const std::string& path, std::span<const Request> requests,
                       const BuWriteOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_bu_log_file: cannot open " + path);
  write_bu_log(out, requests, options);
}

}  // namespace eacache
