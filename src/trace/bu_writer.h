// Writer for the BU-style log format accepted by trace/bu_parser.h.
//
// Lets users export synthetic workloads for other tools (or for replaying
// the exact same byte stream later) and gives the parser a round-trip test
// target. Lines are written as:
//
//   <timestamp-seconds> u<user> doc<document-id> <size-bytes>
//
// which parses back to a trace with identical timestamps and sizes and an
// id structure isomorphic to the original (the parser re-hashes the user
// and URL tokens, so numeric ids change but equality is preserved).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "trace/trace.h"

namespace eacache {

struct BuWriteOptions {
  /// Prefixes keep generated tokens syntactically URL-ish / user-ish.
  std::string user_prefix = "u";
  std::string url_prefix = "doc";
  bool write_header_comment = true;
};

void write_bu_log(std::ostream& out, std::span<const Request> requests,
                  const BuWriteOptions& options = {});

/// Throws std::runtime_error if the file cannot be opened.
void write_bu_log_file(const std::string& path, std::span<const Request> requests,
                       const BuWriteOptions& options = {});

}  // namespace eacache
