#include "trace/analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace eacache {

namespace {

/// Fenwick (binary-indexed) tree over request positions; used to count how
/// many DISTINCT documents were touched since a document's previous access.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t index, int delta) {
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of [0, index] (0-based, inclusive).
  [[nodiscard]] std::int64_t prefix(std::size_t index) const {
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  [[nodiscard]] std::int64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

TraceProfile profile_trace(std::span<const Request> requests) {
  TraceProfile profile;
  profile.total_requests = requests.size();
  if (requests.empty()) return profile;

  std::unordered_map<DocumentId, std::uint64_t> frequency;
  std::unordered_map<DocumentId, Bytes> sizes;
  for (const Request& request : requests) {
    ++frequency[request.document];
    sizes.emplace(request.document, request.size);
  }
  profile.unique_documents = frequency.size();
  for (const auto& [doc, count] : frequency) {
    if (count == 1) ++profile.one_timers;
  }
  profile.one_timer_fraction = static_cast<double>(profile.one_timers) /
                               static_cast<double>(profile.unique_documents);
  profile.compulsory_miss_fraction = static_cast<double>(profile.unique_documents) /
                                     static_cast<double>(profile.total_requests);

  // Zipf fit: sort frequencies descending, regress log(freq) on log(rank).
  std::vector<std::uint64_t> counts;
  counts.reserve(frequency.size());
  // eacheck:allow(determinism): hash order is normalized by the sort below
  for (const auto& [doc, count] : frequency) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  if (counts.size() >= 2 && counts.front() > counts.back()) {
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
    const double n = static_cast<double>(counts.size());
    for (std::size_t rank = 0; rank < counts.size(); ++rank) {
      const double x = std::log(static_cast<double>(rank + 1));
      const double y = std::log(static_cast<double>(counts[rank]));
      sum_x += x;
      sum_y += y;
      sum_xx += x * x;
      sum_xy += x * y;
    }
    const double denom = n * sum_xx - sum_x * sum_x;
    if (denom > 0.0) {
      profile.zipf_alpha = -(n * sum_xy - sum_x * sum_y) / denom;  // slope is -alpha
    }
  }

  std::vector<Bytes> size_values;
  size_values.reserve(sizes.size());
  Bytes size_sum = 0;
  // eacheck:allow(determinism): commutative integer sum; pushed values sorted below
  for (const auto& [doc, size] : sizes) {
    size_values.push_back(size);
    size_sum += size;
  }
  std::sort(size_values.begin(), size_values.end());
  profile.mean_size = size_sum / size_values.size();
  profile.median_size = size_values[size_values.size() / 2];
  profile.max_size = size_values.back();
  return profile;
}

StackDistanceHistogram compute_stack_distances(std::span<const Request> requests) {
  StackDistanceHistogram histogram;
  histogram.total = requests.size();
  if (requests.empty()) return histogram;

  // Mattson via Fenwick: tree positions are request indices; position i is
  // marked iff the document referenced at i has not been referenced again
  // since. The stack distance of a re-reference at time t of a document
  // last seen at time p is the number of marked positions in (p, t] —
  // i.e. the count of distinct documents touched since p, inclusive of the
  // document itself.
  FenwickTree tree(requests.size());
  std::unordered_map<DocumentId, std::size_t> last_position;
  last_position.reserve(requests.size() / 4);
  histogram.distances.assign(2, 0);  // grows on demand; index 0 unused

  for (std::size_t t = 0; t < requests.size(); ++t) {
    const DocumentId doc = requests[t].document;
    const auto it = last_position.find(doc);
    if (it == last_position.end()) {
      ++histogram.cold;
    } else {
      const std::size_t prev = it->second;
      const std::int64_t marked_up_to_prev = tree.prefix(prev);
      const std::int64_t marked_total = tree.total();
      const auto distance = static_cast<std::uint64_t>(marked_total - marked_up_to_prev + 1);
      if (distance >= histogram.distances.size()) {
        histogram.distances.resize(distance + 1, 0);
      }
      ++histogram.distances[distance];
      tree.add(prev, -1);  // the old position is no longer the last access
    }
    tree.add(t, +1);
    last_position[doc] = t;
  }
  return histogram;
}

double StackDistanceHistogram::hit_rate_at(std::uint64_t capacity_docs) const {
  if (total == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::uint64_t limit =
      std::min<std::uint64_t>(capacity_docs, distances.empty() ? 0 : distances.size() - 1);
  for (std::uint64_t d = 1; d <= limit; ++d) hits += distances[d];
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace eacache
