// Parser for Squid native access.log lines — the de-facto standard proxy
// log format (Squid is the paper's reference [12] and the proxy its
// protocol machinery models). Field layout:
//
//   time.ms elapsed client code/status bytes method URL ident hierarchy/peer type
//
// e.g.
//   847087401.234  95 10.0.0.17 TCP_MISS/200 4218 GET http://www.bu.edu/ - DIRECT/128.197.1.1 text/html
//
// Mapping into the simulator's vocabulary:
//   timestamp <- field 1 (UNIX seconds with millisecond fraction)
//   user      <- client address (hashed)
//   document  <- URL (hashed)
//   size      <- bytes (0 coerced to the 4 KB default, as the paper did)
//
// Filtering: only GET requests with a 2xx/3xx status are cacheable
// traffic; everything else (CONNECT, POST, errors) is skipped and counted.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace eacache {

struct SquidParseOptions {
  Bytes default_size = 4 * kKiB;
  bool normalize_time = true;   // shift so the first request is at t=0
  bool only_cacheable = true;   // keep GET + 2xx/3xx only
};

struct SquidParseResult {
  Trace trace;
  std::uint64_t lines_read = 0;
  std::uint64_t lines_skipped = 0;      // comments, blanks, malformed
  std::uint64_t lines_filtered = 0;     // valid but non-cacheable traffic
  std::uint64_t zero_sizes_coerced = 0;
};

[[nodiscard]] SquidParseResult parse_squid_log(std::istream& in,
                                               const SquidParseOptions& options = {});

[[nodiscard]] SquidParseResult parse_squid_log_file(const std::string& path,
                                                    const SquidParseOptions& options = {});

/// Streaming counterpart of parse_squid_log (one line per next(), O(1)
/// memory). As with BuLogSource, out-of-order timestamps are clamped
/// forward — streaming cannot sort — and counted. Non-owning; reset()
/// requires a seekable stream.
class SquidLogSource final : public TraceSource {
 public:
  explicit SquidLogSource(std::istream& in, const SquidParseOptions& options = {});

  bool next(Request& out) override;
  void reset() override;

  [[nodiscard]] std::uint64_t lines_read() const { return lines_read_; }
  [[nodiscard]] std::uint64_t lines_skipped() const { return lines_skipped_; }
  [[nodiscard]] std::uint64_t lines_filtered() const { return lines_filtered_; }
  [[nodiscard]] std::uint64_t zero_sizes_coerced() const { return zero_sizes_coerced_; }
  [[nodiscard]] std::uint64_t clamped_timestamps() const { return clamped_timestamps_; }

 private:
  std::istream* in_;
  SquidParseOptions options_;
  Duration shift_ = Duration::zero();
  TimePoint last_ = kSimEpoch;
  bool started_ = false;
  std::uint64_t lines_read_ = 0;
  std::uint64_t lines_skipped_ = 0;
  std::uint64_t lines_filtered_ = 0;
  std::uint64_t zero_sizes_coerced_ = 0;
  std::uint64_t clamped_timestamps_ = 0;
};

}  // namespace eacache
