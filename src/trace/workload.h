// Composable workload DSL (DESIGN.md §15).
//
// The paper's evaluation rests on one BU-calibrated profile; this module
// generalizes the synthetic generator into a spec of orthogonal, composable
// components so modern scenarios — flash crowds, hot-set drift, diurnal
// load, segmented media objects, metro-scale user populations — are data,
// not code:
//
//  * stationary core   — Zipf(alpha) document popularity over a shuffled
//                        rank->id permutation, log-normal + Pareto sizes
//                        (per-document, draw-order independent), Poisson
//                        arrivals over `span`.
//  * diurnal           — the arrival rate is modulated by a sinusoid
//                        (1 + A*sin) via Poisson thinning, so request
//                        density follows a day/night curve.
//  * churn (drift)     — every `interval`, `fraction` of the hot window's
//                        ranks swap with uniformly drawn ranks, so the hot
//                        set drifts over the trace. Driven by a DEDICATED
//                        rng stream, so the permutation schedule is a pure
//                        function of the spec (workload_hot_documents
//                        replays it for tests).
//  * flash crowd       — one reserved document (workload_flash_document())
//                        ramps linearly to `peak` fraction of all traffic,
//                        holds, and ramps back down.
//  * segmented objects — a deterministic per-document coin marks documents
//                        as segmented; every reference to one expands into
//                        a chunk train (chunk 0 at the request instant,
//                        chunks 1..K-1 spaced `gap` apart) over reserved
//                        chunk ids, time-merged with the base arrival
//                        process.
//  * sessions          — requests are issued through a bounded table of
//                        live sessions; each session pins a user drawn
//                        Zipf-distributed from a population of up to 2^32-1
//                        users and re-references its own recent documents
//                        with probability `affinity`.
//
// Everything streams: WorkloadSource implements TraceSource with state
// bounded by the universe (documents + sessions + pending chunks), never by
// the request count, so a 100M-request trace costs O(documents) memory.
// generate_workload_trace() is the small-run adapter.
//
// Determinism: a WorkloadSource is a pure function of its spec — same spec,
// same stream, on any thread, pulled or materialized.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "common/zipf.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace eacache {

/// Sinusoidal arrival-rate modulation: rate(t) = base * (1 + A*sin(2*pi*(t -
/// phase)/period)). amplitude 0 disables (homogeneous Poisson).
struct DiurnalSpec {
  double amplitude = 0.0;  // in [0, 1)
  Duration period = hours(24);
  Duration phase = Duration::zero();

  [[nodiscard]] bool enabled() const { return amplitude > 0.0; }
};

/// Hot-set drift: every `interval`, ceil(fraction * hot_window) ranks inside
/// the hot window swap with uniformly drawn ranks of the whole universe.
struct ChurnSpec {
  Duration interval = Duration::zero();  // zero disables
  double fraction = 0.0;                 // of the hot window, per interval
  std::uint64_t hot_window = 0;          // 0 = max(16, num_documents / 64)

  [[nodiscard]] bool enabled() const {
    return interval > Duration::zero() && fraction > 0.0;
  }
};

/// One document ramps to `peak` fraction of all traffic: linear ramp-up over
/// `ramp`, plateau for `hold`, linear ramp-down over `ramp`.
struct FlashCrowdSpec {
  double peak = 0.0;  // fraction of traffic at the plateau, in [0, 1)
  Duration start = Duration::zero();  // offset from trace start
  Duration ramp = minutes(5);
  Duration hold = minutes(30);

  [[nodiscard]] bool enabled() const { return peak > 0.0; }
};

/// Large segmented objects (video chunk trains / range requests). A
/// deterministic per-document coin with success probability `fraction`
/// marks documents segmented; every reference expands into its chunk train.
struct SegmentSpec {
  double fraction = 0.0;  // probability a document is segmented
  Bytes chunk_bytes = 256 * kKiB;
  std::uint32_t min_chunks = 4;
  std::uint32_t max_chunks = 16;
  Duration gap = msec(200);  // inter-chunk spacing within a train

  [[nodiscard]] bool enabled() const { return fraction > 0.0; }
};

/// Session affinity over a metro-scale user population. Requests are issued
/// through `active` concurrently live sessions; a session pins one user for
/// an exponentially distributed lifetime and re-references one of its own
/// last `window` documents with probability `affinity`.
struct SessionSpec {
  double affinity = 0.0;  // in [0, 1)
  std::uint32_t window = 8;
  std::uint32_t active = 1024;
  Duration mean_lifetime = minutes(10);
};

/// Per-document size model (log-normal body, Pareto tail), identical in
/// shape to SyntheticTraceConfig's — sizes derive from per-document hashes,
/// never from draw order.
struct WorkloadSizeSpec {
  Bytes mean_size = 4 * kKiB;
  double sigma = 1.0;
  double pareto_probability = 0.01;
  Bytes pareto_scale = 32 * kKiB;
  double pareto_alpha = 1.5;
  Bytes min_size = 64;
  Bytes max_size = 8 * kMiB;
};

struct WorkloadSpec {
  std::string name = "workload";
  std::uint64_t seed = 42;
  std::uint64_t num_requests = 150'000;  // total emissions, chunk trains included
  std::uint64_t num_documents = 12'000;
  std::uint64_t num_users = 160;  // up to 2^32 - 1 (UserId is 32-bit)
  Duration span = hours(24);
  double zipf_alpha = 0.75;
  double user_alpha = 0.8;

  WorkloadSizeSpec size{};
  DiurnalSpec diurnal{};
  ChurnSpec churn{};
  FlashCrowdSpec flash{};
  SegmentSpec segments{};
  SessionSpec sessions{};

  /// Every violated rule in a stable order; empty means the spec is
  /// generable. Same aggregate-everything shape as GroupConfig::validate.
  [[nodiscard]] std::vector<std::string> validate() const;
  void validate_or_throw() const;

  /// The effective churn hot window (resolves the 0 = auto default).
  [[nodiscard]] std::uint64_t churn_hot_window() const;
};

// ---- Reserved document-id spaces -----------------------------------------
// Normal documents occupy dense ids [0, num_documents) (< 2^40, validated).
// The flash-crowd document and segment chunks live in disjoint reserved
// ranges so analytics can classify any id without carrying side tables.

/// The single flash-crowd document id.
[[nodiscard]] DocumentId workload_flash_document();

/// Chunk `index` of segmented document `base`.
[[nodiscard]] DocumentId workload_chunk_document(DocumentId base, std::uint32_t index);

[[nodiscard]] bool is_flash_document(DocumentId id);
[[nodiscard]] bool is_chunk_document(DocumentId id);
/// The base document of a chunk id (pass is_chunk_document() ids only).
[[nodiscard]] DocumentId chunk_base_document(DocumentId id);

/// True iff `base` is marked segmented under `spec` (deterministic
/// per-document coin).
[[nodiscard]] bool workload_document_segmented(const WorkloadSpec& spec, DocumentId base);

/// Body size of any workload document id under `spec`: per-document hash
/// draw for normal ids, `size.mean_size` for the flash document,
/// `segments.chunk_bytes` for chunk ids.
[[nodiscard]] Bytes workload_document_size(const WorkloadSpec& spec, DocumentId id);

/// The documents occupying popularity ranks [0, k) after `epochs` churn
/// intervals — replays the dedicated churn rng stream, so tests can measure
/// the generator's drift against the schedule that produced it.
[[nodiscard]] std::vector<DocumentId> workload_hot_documents(const WorkloadSpec& spec,
                                                             std::uint64_t epochs,
                                                             std::uint64_t k);

/// The flash-crowd traffic share at offset `t` from trace start (0 when the
/// component is disabled or t is outside the window).
[[nodiscard]] double workload_flash_share(const WorkloadSpec& spec, Duration t);

// ---- The generator -------------------------------------------------------

class WorkloadSource final : public TraceSource {
 public:
  /// Throws std::invalid_argument (aggregated) on an invalid spec.
  explicit WorkloadSource(WorkloadSpec spec);

  bool next(Request& out) override;
  void reset() override;

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
  /// Requests emitted since construction/reset().
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  struct Session {
    UserId user = 0;
    TimePoint expires = kSimEpoch;
    std::vector<DocumentId> recent;  // ring of the last `window` documents
    std::uint32_t next_slot = 0;
    std::uint32_t filled = 0;
    bool live = false;
  };

  struct PendingChunk {
    TimePoint at{};
    DocumentId document = 0;
    UserId user = 0;
    std::uint64_t sequence = 0;  // deterministic tie-break at equal stamps
  };
  struct ChunkAfter {
    bool operator()(const PendingChunk& a, const PendingChunk& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  void init_state();
  void stage_base();           // draw the next base arrival into staged_
  void apply_churn_epochs(Duration now);
  Request pick_base(TimePoint at);

  WorkloadSpec spec_;
  Rng rng_;        // request stream
  Rng churn_rng_;  // dedicated drift stream (see workload_hot_documents)
  ZipfSampler doc_sampler_;
  ZipfSampler user_sampler_;
  std::vector<DocumentId> doc_of_rank_;
  std::vector<Session> sessions_;
  std::priority_queue<PendingChunk, std::vector<PendingChunk>, ChunkAfter> pending_;
  std::optional<Request> staged_;
  double now_ms_ = 0.0;
  double base_rate_ = 0.0;  // requests per simulated ms (pre-modulation)
  std::uint64_t emitted_ = 0;
  std::uint64_t chunk_sequence_ = 0;
  std::uint64_t churn_epochs_applied_ = 0;
};

/// Small-run adapter: pull the whole stream into a Trace (equals streaming
/// pulls element for element — pinned by the equivalence tests).
[[nodiscard]] Trace generate_workload_trace(const WorkloadSpec& spec);

// ---- Spec text format ----------------------------------------------------
// `key = value` pairs separated by newlines or ';'; '#' starts a comment.
// Durations take ms/s/m/h/d suffixes ("90m", "1500ms"); byte values take
// optional KiB/MiB/GiB suffixes. Unknown keys and malformed values are
// aggregated into one std::invalid_argument. parse does NOT validate the
// resulting spec — callers compose first, then validate_or_throw().
// Grammar and key table: DESIGN.md §15.

[[nodiscard]] WorkloadSpec parse_workload_spec(std::string_view text);

/// Canonical one-line rendering (';'-separated, fixed key order, exact
/// round-trip through parse_workload_spec). Used as the TraceCache key and
/// echoed into result-JSON rows ("workload").
[[nodiscard]] std::string format_workload_spec(const WorkloadSpec& spec);

}  // namespace eacache
