#include "trace/trace_source.h"

#include <stdexcept>

namespace eacache {

Trace materialize(TraceSource& source, std::uint64_t limit) {
  Trace trace;
  Request request;
  TimePoint last = kSimEpoch;
  bool first = true;
  while (trace.requests.size() < limit && source.next(request)) {
    if (!first && request.at < last) {
      throw std::invalid_argument(
          "materialize: TraceSource violated the monotone-time contract");
    }
    last = request.at;
    first = false;
    trace.requests.push_back(request);
  }
  return trace;
}

}  // namespace eacache
