#include "event/event_queue.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace eacache {

EventId EventQueue::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_) {
    throw std::logic_error("EventQueue: scheduling in the past");
  }
  const EventId id = next_seq_++;
  heap_.push(Entry{at, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Only ids still awaiting their turn can be cancelled; anything else
  // (fired, already cancelled, kNoEvent) is a no-op so callers need not
  // track whether their deadline raced its cancellation.
  if (live_.erase(id) > 0) cancelled_.insert(id);
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty() && cancelled_.erase(heap_.top().seq) > 0) {
    heap_.pop();
  }
}

void EventQueue::fire(Entry entry) {
  live_.erase(entry.seq);
  now_ = entry.at;
  entry.fn(now_);
}

std::uint64_t EventQueue::run() {
  std::uint64_t executed = 0;
  skip_cancelled();
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    fire(std::move(e));
    ++executed;
    skip_cancelled();
  }
  return executed;
}

std::uint64_t EventQueue::run_until(TimePoint deadline) {
  std::uint64_t executed = 0;
  skip_cancelled();
  while (!heap_.empty() && heap_.top().at <= deadline) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    fire(std::move(e));
    ++executed;
    skip_cancelled();
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool EventQueue::step() {
  skip_cancelled();
  if (heap_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  fire(std::move(e));
  return true;
}

void PeriodicEvent::start(EventQueue& queue, TimePoint first, Duration period, EventFn fn) {
  if (period <= Duration::zero()) {
    throw std::logic_error("PeriodicEvent: period must be positive");
  }
  // Each scheduled occurrence owns the callback and, when fired, schedules a
  // value copy of itself for the next period. No self-referencing closures,
  // so no shared_ptr cycles. Termination is by run_until(): the caller
  // bounds simulated time (run() would loop forever on a periodic event).
  struct Tick {
    EventQueue* queue;
    Duration period;
    std::shared_ptr<EventFn> fn;
    void operator()(TimePoint t) const {
      (*fn)(t);
      queue->schedule_at(t + period, Tick{*this});
    }
  };
  queue.schedule_at(first, Tick{&queue, period, std::make_shared<EventFn>(std::move(fn))});
}

}  // namespace eacache
