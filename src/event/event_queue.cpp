#include "event/event_queue.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace eacache {

void EventQueue::schedule_at(TimePoint at, EventFn fn) {
  if (at < now_) {
    throw std::logic_error("EventQueue: scheduling in the past");
  }
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

void EventQueue::fire(Entry entry) {
  now_ = entry.at;
  entry.fn(now_);
}

std::uint64_t EventQueue::run() {
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    fire(std::move(e));
    ++executed;
  }
  return executed;
}

std::uint64_t EventQueue::run_until(TimePoint deadline) {
  std::uint64_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= deadline) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    fire(std::move(e));
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  fire(std::move(e));
  return true;
}

void PeriodicEvent::start(EventQueue& queue, TimePoint first, Duration period, EventFn fn) {
  if (period <= Duration::zero()) {
    throw std::logic_error("PeriodicEvent: period must be positive");
  }
  // Each scheduled occurrence owns the callback and, when fired, schedules a
  // value copy of itself for the next period. No self-referencing closures,
  // so no shared_ptr cycles. Termination is by run_until(): the caller
  // bounds simulated time (run() would loop forever on a periodic event).
  struct Tick {
    EventQueue* queue;
    Duration period;
    std::shared_ptr<EventFn> fn;
    void operator()(TimePoint t) const {
      (*fn)(t);
      queue->schedule_at(t + period, Tick{*this});
    }
  };
  queue.schedule_at(first, Tick{&queue, period, std::make_shared<EventFn>(std::move(fn))});
}

}  // namespace eacache
