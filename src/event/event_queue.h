// Deterministic discrete-event engine.
//
// The paper's authors ran their simulator as real processes exchanging UDP
// (ICP) and TCP (HTTP) traffic between department machines. We replace the
// testbed with a single-threaded event queue: every run is a pure function
// of (trace, configuration), which the property tests depend on.
//
// Determinism requirements baked in:
//  * ties in event time are broken by insertion sequence number, so two
//    events scheduled for the same instant always fire in schedule order;
//  * the queue never consults the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace eacache {

/// Callback invoked when an event fires. Receives the simulated firing time.
using EventFn = std::function<void(TimePoint)>;

/// Opaque handle identifying a scheduled (not yet fired) event; used to
/// cancel it. kNoEvent (0) never names a real event.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time: the firing time of the most recently executed
  /// event (kSimEpoch before any event runs).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at the absolute simulated time `at`. Scheduling in the
  /// past is a programming error and throws std::logic_error. Returns a
  /// handle that cancel() accepts until the event fires.
  EventId schedule_at(TimePoint at, EventFn fn);

  /// Schedule `fn` `delay` after the current time.
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a scheduled event: it still occupies its heap slot but fires as
  /// a no-op (lazy deletion — the request pipeline cancels ICP timeouts
  /// whose discovery window completed early). Cancelling an already-fired,
  /// already-cancelled or kNoEvent id is a harmless no-op.
  void cancel(EventId id);

  /// Run events until the queue is empty. Returns number of events executed.
  std::uint64_t run();

  /// Run events with firing time <= deadline. Time advances to `deadline`
  /// even if the queue drains earlier. Returns number executed.
  std::uint64_t run_until(TimePoint deadline);

  /// Execute exactly one event if any is pending. Returns false if empty.
  bool step();

  /// Firing time of the earliest live event, or nullopt when drained.
  /// Non-const: pops lazily-cancelled entries off the top. The sharded
  /// engine's barrier uses this to compute the next synchronization window.
  [[nodiscard]] std::optional<TimePoint> next_time() {
    skip_cancelled();
    if (heap_.empty()) return std::nullopt;
    return heap_.top().at;
  }

  [[nodiscard]] bool empty() const { return heap_.size() == cancelled_.size(); }
  /// Live (uncancelled) events still scheduled.
  [[nodiscard]] std::size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void fire(Entry entry);
  /// Pop cancelled entries off the top without firing them.
  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  TimePoint now_ = kSimEpoch;
  std::uint64_t next_seq_ = 1;  // 0 is kNoEvent
  std::unordered_set<std::uint64_t> live_;       // scheduled, not yet fired/cancelled
  std::unordered_set<std::uint64_t> cancelled_;  // cancelled, still in heap_
};

/// Recurring event helper: reschedules itself every `period` until cancelled
/// or until the queue drains. Used for the windowed expiration-age rollover
/// and periodic metric snapshots.
class PeriodicEvent {
 public:
  /// `fn` fires first at `first`, then every `period` thereafter, while
  /// `alive` (shared flag) remains true.
  static void start(EventQueue& queue, TimePoint first, Duration period, EventFn fn);
};

}  // namespace eacache
