// Transport accounting for the simulated cache group.
//
// The group orchestrator calls record_* as it moves messages between
// proxies; the stats let tests and benches verify the EA scheme's headline
// overhead claim: identical message counts to ad-hoc, with only a fixed
// 8-byte piggyback on HTTP messages.
//
// When bound to a MetricRegistry the transport additionally accounts BYTES
// MOVED PER LINK ("link.<from>-><to>.bytes", with "origin" as the terminal
// column) — the per-edge view the aggregate TransportStats cannot give.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "obs/metric_registry.h"

namespace eacache {

struct TransportStats {
  std::uint64_t icp_queries = 0;
  std::uint64_t icp_replies = 0;
  std::uint64_t icp_losses = 0;  // UDP exchanges that never completed
  std::uint64_t http_requests = 0;
  std::uint64_t http_responses = 0;
  std::uint64_t failed_probes = 0;  // not-found fetches (digest mode)
  std::uint64_t digest_publications = 0;
  std::uint64_t origin_fetches = 0;

  Bytes icp_bytes = 0;
  Bytes http_header_bytes = 0;
  Bytes http_body_bytes = 0;
  Bytes piggyback_bytes = 0;
  Bytes digest_bytes = 0;

  /// Field-wise accumulation, for aggregating per-worker accounting shards
  /// (the daemon keeps one Transport per worker thread and merges after
  /// join; the simulator's single instance never needs this).
  void merge(const TransportStats& other) {
    icp_queries += other.icp_queries;
    icp_replies += other.icp_replies;
    icp_losses += other.icp_losses;
    http_requests += other.http_requests;
    http_responses += other.http_responses;
    failed_probes += other.failed_probes;
    digest_publications += other.digest_publications;
    origin_fetches += other.origin_fetches;
    icp_bytes += other.icp_bytes;
    http_header_bytes += other.http_header_bytes;
    http_body_bytes += other.http_body_bytes;
    piggyback_bytes += other.piggyback_bytes;
    digest_bytes += other.digest_bytes;
  }

  [[nodiscard]] std::uint64_t total_messages() const {
    return icp_queries + icp_replies + http_requests + http_responses + digest_publications;
  }
  [[nodiscard]] Bytes total_bytes() const {
    return icp_bytes + http_header_bytes + http_body_bytes + piggyback_bytes + digest_bytes;
  }
};

class Transport {
 public:
  explicit Transport(WireCosts costs = WireCosts{}) : costs_(costs) {}

  /// Attach a metric registry (which must outlive the transport) and
  /// pre-size the per-link counter table for `num_caches` proxies. Link
  /// counters themselves are created lazily on first traffic, so a sparse
  /// topology registers only the links it actually uses.
  void bind_registry(MetricRegistry* registry, std::size_t num_caches) {
    registry_ = (registry != nullptr && registry->enabled()) ? registry : nullptr;
    num_caches_ = num_caches;
    links_.assign(registry_ != nullptr ? num_caches * (num_caches + 1) : 0,
                  MetricRegistry::Counter{});
  }

  void record_icp_query(const IcpQuery& query) {
    ++stats_.icp_queries;
    stats_.icp_bytes += costs_.icp_message();
    add_link_bytes(query.from, query.to, costs_.icp_message());
  }
  void record_icp_reply(const IcpReply& reply) {
    ++stats_.icp_replies;
    stats_.icp_bytes += costs_.icp_message();
    add_link_bytes(reply.from, reply.to, costs_.icp_message());
  }
  /// A query (or its reply) was dropped in flight: the query's bytes were
  /// spent, no reply arrives.
  void record_icp_loss() { ++stats_.icp_losses; }
  void record_http_request(const HttpRequest& request) {
    ++stats_.http_requests;
    stats_.http_header_bytes += costs_.http_request_headers;
    Bytes wire = costs_.http_request_headers;
    if (request.requester_age.has_value()) {
      stats_.piggyback_bytes += costs_.ea_piggyback;
      wire += costs_.ea_piggyback;
    }
    add_link_bytes(request.from, request.to, wire);
  }
  void record_http_response(const HttpResponse& response) {
    ++stats_.http_responses;
    stats_.http_header_bytes += costs_.http_response_headers;
    stats_.http_body_bytes += response.body_size;
    if (!response.found) ++stats_.failed_probes;
    Bytes wire = costs_.http_response_headers + response.body_size;
    if (response.responder_age.has_value()) {
      stats_.piggyback_bytes += costs_.ea_piggyback;
      wire += costs_.ea_piggyback;
    }
    add_link_bytes(response.from, response.to, wire);
  }
  void record_digest_publication(const DigestPublication& publication) {
    ++stats_.digest_publications;
    stats_.digest_bytes += publication.digest_size;
    add_link_bytes(publication.from, publication.to, publication.digest_size);
  }
  /// `requester` is the cache that contacted the origin (the link endpoint).
  void record_origin_fetch(ProxyId requester, Bytes body_size) {
    ++stats_.origin_fetches;
    stats_.http_header_bytes += costs_.http_request_headers + costs_.http_response_headers;
    stats_.http_body_bytes += body_size;
    add_link_bytes(requester, kOriginLink,
                   costs_.http_request_headers + costs_.http_response_headers + body_size);
  }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] const WireCosts& costs() const { return costs_; }

 private:
  /// Sentinel "to" endpoint for origin-server traffic.
  static constexpr std::size_t kOriginLink = static_cast<std::size_t>(-1);

  void add_link_bytes(std::size_t from, std::size_t to, Bytes bytes) {
    if (registry_ == nullptr || from >= num_caches_) return;
    const std::size_t column = to == kOriginLink ? num_caches_ : to;
    if (column > num_caches_) return;
    MetricRegistry::Counter& counter = links_[from * (num_caches_ + 1) + column];
    if (!counter.bound()) {
      const std::string peer =
          column == num_caches_ ? std::string("origin") : std::to_string(column);
      counter = registry_->counter("link." + std::to_string(from) + "->" + peer + ".bytes");
    }
    counter.inc(bytes);
  }

  WireCosts costs_;
  TransportStats stats_;
  MetricRegistry* registry_ = nullptr;  // null = per-link accounting off
  std::size_t num_caches_ = 0;
  std::vector<MetricRegistry::Counter> links_;
};

}  // namespace eacache
