// Transport accounting for the simulated cache group.
//
// The group orchestrator calls record_* as it moves messages between
// proxies; the stats let tests and benches verify the EA scheme's headline
// overhead claim: identical message counts to ad-hoc, with only a fixed
// 8-byte piggyback on HTTP messages.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/message.h"

namespace eacache {

struct TransportStats {
  std::uint64_t icp_queries = 0;
  std::uint64_t icp_replies = 0;
  std::uint64_t icp_losses = 0;  // UDP exchanges that never completed
  std::uint64_t http_requests = 0;
  std::uint64_t http_responses = 0;
  std::uint64_t failed_probes = 0;  // not-found fetches (digest mode)
  std::uint64_t digest_publications = 0;
  std::uint64_t origin_fetches = 0;

  Bytes icp_bytes = 0;
  Bytes http_header_bytes = 0;
  Bytes http_body_bytes = 0;
  Bytes piggyback_bytes = 0;
  Bytes digest_bytes = 0;

  [[nodiscard]] std::uint64_t total_messages() const {
    return icp_queries + icp_replies + http_requests + http_responses + digest_publications;
  }
  [[nodiscard]] Bytes total_bytes() const {
    return icp_bytes + http_header_bytes + http_body_bytes + piggyback_bytes + digest_bytes;
  }
};

class Transport {
 public:
  explicit Transport(WireCosts costs = WireCosts{}) : costs_(costs) {}

  void record_icp_query(const IcpQuery&) {
    ++stats_.icp_queries;
    stats_.icp_bytes += costs_.icp_message();
  }
  void record_icp_reply(const IcpReply&) {
    ++stats_.icp_replies;
    stats_.icp_bytes += costs_.icp_message();
  }
  /// A query (or its reply) was dropped in flight: the query's bytes were
  /// spent, no reply arrives.
  void record_icp_loss() { ++stats_.icp_losses; }
  void record_http_request(const HttpRequest& request) {
    ++stats_.http_requests;
    stats_.http_header_bytes += costs_.http_request_headers;
    if (request.requester_age.has_value()) stats_.piggyback_bytes += costs_.ea_piggyback;
  }
  void record_http_response(const HttpResponse& response) {
    ++stats_.http_responses;
    stats_.http_header_bytes += costs_.http_response_headers;
    stats_.http_body_bytes += response.body_size;
    if (!response.found) ++stats_.failed_probes;
    if (response.responder_age.has_value()) stats_.piggyback_bytes += costs_.ea_piggyback;
  }
  void record_digest_publication(const DigestPublication& publication) {
    ++stats_.digest_publications;
    stats_.digest_bytes += publication.digest_size;
  }
  void record_origin_fetch(Bytes body_size) {
    ++stats_.origin_fetches;
    stats_.http_header_bytes += costs_.http_request_headers + costs_.http_response_headers;
    stats_.http_body_bytes += body_size;
  }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] const WireCosts& costs() const { return costs_; }

 private:
  WireCosts costs_;
  TransportStats stats_;
};

}  // namespace eacache
