// Latency model.
//
// The paper measured, on its department testbed, the end-to-end latency of
// serving a 4 KB document (section 4.2):
//     local hit   (LHL) = 146 ms
//     remote hit  (RHL) = 342 ms
//     miss        (ML)  = 2784 ms
// and estimated average latency via Eq. 6 from the hit-rate split. We keep
// those three constants as the default model and also expose a component
// decomposition (ICP round trip, per-byte transfer) so the ABL-RATIO
// ablation can sweep the remote-hit-to-miss latency ratio the paper's
// introduction identifies as the governing parameter of cooperative
// caching's benefit.
#pragma once

#include "common/outcome.h"
#include "common/types.h"

namespace eacache {

struct LatencyModel {
  Duration local_hit = msec(146);
  Duration remote_hit = msec(342);
  Duration miss = msec(2784);
  /// Cost of a failed digest probe (header-only inter-proxy round trip,
  /// digest discovery mode only): lighter than a full 4 KB remote hit.
  Duration failed_probe = msec(200);

  // ---- Stage decomposition (event-driven pipeline) ----------------------
  //
  // The staged pipeline needs per-stage delays rather than per-outcome
  // aggregates. We decompose the paper's aggregates so that a request with
  // no concurrency effects measures exactly the legacy constants:
  //   local hit:  local_lookup-to-completion = local_hit
  //   remote hit: local_lookup + icp_rtt + remote_transfer() = remote_hit
  //   miss:       local_lookup + icp_rtt + origin_transfer() = miss
  // The split values are not from the paper (it only reports aggregates);
  // icp_rtt ~ one LAN UDP round trip, local_lookup ~ disk index probe.

  /// One ICP query/reply round trip between sibling proxies.
  Duration icp_rtt = msec(40);
  /// Local cache index lookup + (on hit) start of local service.
  Duration local_lookup = msec(10);

  /// Sibling HTTP transfer time such that a remote hit's stages sum to
  /// remote_hit. Clamped at zero for pathological models.
  [[nodiscard]] constexpr Duration remote_transfer() const {
    const Duration d = remote_hit - local_lookup - icp_rtt;
    return d > Duration::zero() ? d : Duration::zero();
  }

  /// Origin fetch transfer time such that a miss's stages sum to miss.
  [[nodiscard]] constexpr Duration origin_transfer() const {
    const Duration d = miss - local_lookup - icp_rtt;
    return d > Duration::zero() ? d : Duration::zero();
  }

  /// Latency of one request by outcome class (the paper's model: outcome
  /// class determines latency; body size was fixed at 4 KB in their
  /// measurement).
  [[nodiscard]] constexpr Duration latency_for(RequestOutcome outcome) const {
    switch (outcome) {
      case RequestOutcome::kLocalHit: return local_hit;
      case RequestOutcome::kRemoteHit: return remote_hit;
      case RequestOutcome::kMiss: return miss;
    }
    return Duration::zero();
  }

  /// The paper's defaults, as measured on their testbed.
  [[nodiscard]] static constexpr LatencyModel paper_defaults() { return LatencyModel{}; }

  /// A model with the remote-hit latency scaled so that
  /// remote_hit == ratio * miss (holding local_hit and miss fixed).
  /// Used by the ABL-RATIO sweep; requires 0 < ratio.
  [[nodiscard]] static LatencyModel with_remote_to_miss_ratio(double ratio);
};

}  // namespace eacache
