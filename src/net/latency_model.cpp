#include "net/latency_model.h"

#include <stdexcept>

namespace eacache {

LatencyModel LatencyModel::with_remote_to_miss_ratio(double ratio) {
  if (!(ratio > 0.0)) {
    throw std::invalid_argument("LatencyModel: remote/miss ratio must be positive");
  }
  LatencyModel model;
  model.remote_hit =
      Duration{static_cast<SimClock::rep>(ratio * static_cast<double>(model.miss.count()))};
  if (model.remote_hit < model.local_hit) {
    // A remote hit can never beat a local hit; clamp to keep the model sane.
    model.remote_hit = model.local_hit;
  }
  return model;
}

}  // namespace eacache
