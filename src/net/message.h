// Inter-proxy protocol messages.
//
// Two protocols, exactly as in the paper's testbed:
//  * ICP (Internet Cache Protocol, RFC 2186 style): lightweight presence
//    queries/replies, one per sibling per local miss.
//  * HTTP: the actual document transfer between caches (or from the origin).
//
// The EA scheme's only wire change is piggybacking the sender's cache
// expiration age on the HTTP request and response (paper section 3.3 —
// "no extra connection setup", "no hidden communication costs"). We model
// that as an optional fixed-width field so the transport stats can prove
// the overhead claim: same message COUNT, +8 bytes on HTTP messages only.
#pragma once

#include <optional>

#include "common/types.h"
#include "ea/expiration_age.h"

namespace eacache {

/// Approximate wire sizes, used only for traffic accounting. ICP messages
/// are a 20-byte header plus the URL; HTTP messages carry ~250-300 bytes of
/// headers in the mid-90s traces the paper replays.
struct WireCosts {
  Bytes icp_header = 20;
  Bytes avg_url = 40;
  Bytes http_request_headers = 250;
  Bytes http_response_headers = 300;
  Bytes ea_piggyback = 8;  // one 64-bit age field

  [[nodiscard]] Bytes icp_message() const { return icp_header + avg_url; }
};

struct IcpQuery {
  ProxyId from = 0;
  ProxyId to = 0;
  DocumentId document = 0;
};

struct IcpReply {
  ProxyId from = 0;
  ProxyId to = 0;
  DocumentId document = 0;
  bool hit = false;
};

struct HttpRequest {
  ProxyId from = 0;
  ProxyId to = 0;
  DocumentId document = 0;
  /// EA scheme: requester's cache expiration age; nullopt under ad-hoc.
  std::optional<ExpAge> requester_age;
};

/// Who ultimately produced the body of an HTTP response.
enum class ResponseSource { kCache, kOrigin };

struct HttpResponse {
  ProxyId from = 0;
  ProxyId to = 0;
  DocumentId document = 0;
  /// False only in digest discovery mode: the requester probed a peer whose
  /// published digest was stale or collided (a "404" — headers only, no
  /// body). ICP discovery never produces not-found fetches.
  bool found = true;
  Bytes body_size = 0;
  ResponseSource source = ResponseSource::kCache;
  /// EA scheme: responder's cache expiration age; nullopt under ad-hoc.
  std::optional<ExpAge> responder_age;

  // Coherence metadata (meaningful only when the group runs coherence):
  // the served body's origin version and when the responder last validated
  // it — the receiver inherits both (the HTTP Age-header rule).
  std::uint64_t version = 0;
  TimePoint validated_at{};
};

/// A periodic Summary-Cache digest broadcast (one per peer per refresh).
struct DigestPublication {
  ProxyId from = 0;
  ProxyId to = 0;
  Bytes digest_size = 0;
};

}  // namespace eacache
