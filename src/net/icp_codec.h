// ICP v2 wire codec (RFC 2186) — the actual protocol the paper's caches
// speak ("ICP is a light-weight protocol and is implemented on top of UDP").
//
// The simulator moves typed messages, not bytes, but a credible
// reproduction of an ICP-based system should include the real framing: this
// codec encodes/decodes the RFC 2186 packet layout so that (a) the
// transport's byte accounting can be validated against genuine packet
// sizes and (b) the library is usable as the message layer of a real proxy.
//
// Layout (network byte order):
//   offset 0  : opcode            (1 byte)
//   offset 1  : version           (1 byte, = 2)
//   offset 2  : message length    (2 bytes, total packet size)
//   offset 4  : request number    (4 bytes)
//   offset 8  : options           (4 bytes)
//   offset 12 : option data       (4 bytes)
//   offset 16 : sender host addr  (4 bytes)
//   offset 20 : payload
// ICP_OP_QUERY payload: requester host address (4 bytes) + URL + NUL.
// Other opcodes:        URL + NUL.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace eacache {

enum class IcpOpcode : std::uint8_t {
  kInvalid = 0,
  kQuery = 1,
  kHit = 2,
  kMiss = 3,
  kErr = 4,
  kMissNoFetch = 21,
  kDenied = 22,
};

[[nodiscard]] std::string_view to_string(IcpOpcode opcode);

struct IcpPacket {
  IcpOpcode opcode = IcpOpcode::kInvalid;
  std::uint8_t version = 2;
  std::uint32_t request_number = 0;
  std::uint32_t options = 0;
  std::uint32_t option_data = 0;
  std::uint32_t sender_address = 0;
  /// QUERY only; must be 0 for other opcodes.
  std::uint32_t requester_address = 0;
  std::string url;

  friend bool operator==(const IcpPacket&, const IcpPacket&) = default;
};

inline constexpr std::size_t kIcpHeaderSize = 20;
inline constexpr std::size_t kIcpMaxPacketSize = 0xffff;

/// Total encoded size of a packet (header + payload + NUL).
[[nodiscard]] std::size_t icp_encoded_size(const IcpPacket& packet);

/// Encode to wire bytes. Throws std::invalid_argument if the packet cannot
/// be represented (URL too long, invalid opcode).
[[nodiscard]] std::vector<std::uint8_t> icp_encode(const IcpPacket& packet);

/// Decode from wire bytes. Returns nullopt on any malformed input
/// (truncated header, bad version, length mismatch, unknown opcode,
/// missing NUL terminator).
[[nodiscard]] std::optional<IcpPacket> icp_decode(std::span<const std::uint8_t> bytes);

}  // namespace eacache
