#include "net/icp_codec.h"

#include <stdexcept>

namespace eacache {

namespace {

bool known_opcode(IcpOpcode opcode) {
  switch (opcode) {
    case IcpOpcode::kQuery:
    case IcpOpcode::kHit:
    case IcpOpcode::kMiss:
    case IcpOpcode::kErr:
    case IcpOpcode::kMissNoFetch:
    case IcpOpcode::kDenied:
      return true;
    case IcpOpcode::kInvalid:
      return false;
  }
  return false;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t offset) {
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  return (static_cast<std::uint32_t>(in[offset]) << 24) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 8) |
         static_cast<std::uint32_t>(in[offset + 3]);
}

}  // namespace

std::string_view to_string(IcpOpcode opcode) {
  switch (opcode) {
    case IcpOpcode::kInvalid: return "ICP_OP_INVALID";
    case IcpOpcode::kQuery: return "ICP_OP_QUERY";
    case IcpOpcode::kHit: return "ICP_OP_HIT";
    case IcpOpcode::kMiss: return "ICP_OP_MISS";
    case IcpOpcode::kErr: return "ICP_OP_ERR";
    case IcpOpcode::kMissNoFetch: return "ICP_OP_MISS_NOFETCH";
    case IcpOpcode::kDenied: return "ICP_OP_DENIED";
  }
  return "?";
}

std::size_t icp_encoded_size(const IcpPacket& packet) {
  std::size_t size = kIcpHeaderSize + packet.url.size() + 1;  // NUL-terminated URL
  if (packet.opcode == IcpOpcode::kQuery) size += 4;          // requester address
  return size;
}

std::vector<std::uint8_t> icp_encode(const IcpPacket& packet) {
  if (!known_opcode(packet.opcode)) {
    throw std::invalid_argument("icp_encode: invalid opcode");
  }
  if (packet.url.find('\0') != std::string::npos) {
    throw std::invalid_argument("icp_encode: URL contains NUL");
  }
  const std::size_t total = icp_encoded_size(packet);
  if (total > kIcpMaxPacketSize) {
    throw std::invalid_argument("icp_encode: packet exceeds 64 KiB");
  }

  std::vector<std::uint8_t> out;
  out.reserve(total);
  out.push_back(static_cast<std::uint8_t>(packet.opcode));
  out.push_back(packet.version);
  put_u16(out, static_cast<std::uint16_t>(total));
  put_u32(out, packet.request_number);
  put_u32(out, packet.options);
  put_u32(out, packet.option_data);
  put_u32(out, packet.sender_address);
  if (packet.opcode == IcpOpcode::kQuery) {
    put_u32(out, packet.requester_address);
  }
  out.insert(out.end(), packet.url.begin(), packet.url.end());
  out.push_back(0);
  return out;
}

std::optional<IcpPacket> icp_decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kIcpHeaderSize) return std::nullopt;

  IcpPacket packet;
  packet.opcode = static_cast<IcpOpcode>(bytes[0]);
  if (!known_opcode(packet.opcode)) return std::nullopt;
  packet.version = bytes[1];
  if (packet.version != 2) return std::nullopt;
  const std::uint16_t declared = get_u16(bytes, 2);
  if (declared != bytes.size()) return std::nullopt;
  packet.request_number = get_u32(bytes, 4);
  packet.options = get_u32(bytes, 8);
  packet.option_data = get_u32(bytes, 12);
  packet.sender_address = get_u32(bytes, 16);

  std::size_t payload = kIcpHeaderSize;
  if (packet.opcode == IcpOpcode::kQuery) {
    if (bytes.size() < payload + 4) return std::nullopt;
    packet.requester_address = get_u32(bytes, payload);
    payload += 4;
  }
  if (bytes.size() <= payload) return std::nullopt;  // need at least the NUL
  if (bytes.back() != 0) return std::nullopt;
  packet.url.assign(reinterpret_cast<const char*>(bytes.data()) + payload,
                    bytes.size() - payload - 1);
  if (packet.url.find('\0') != std::string::npos) return std::nullopt;
  return packet;
}

}  // namespace eacache
