#include "group/topology.h"

#include <stdexcept>
#include <unordered_set>

namespace eacache {

Topology Topology::distributed(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Topology: need at least one cache");
  return Topology(TopologyKind::kDistributed,
                  std::vector<std::optional<ProxyId>>(n, std::nullopt));
}

Topology Topology::two_level(std::size_t leaves) {
  if (leaves == 0) throw std::invalid_argument("Topology: need at least one leaf");
  std::vector<std::optional<ProxyId>> parents(leaves + 1, std::nullopt);
  const auto root = static_cast<ProxyId>(leaves);
  for (std::size_t i = 0; i < leaves; ++i) parents[i] = root;
  return Topology(TopologyKind::kHierarchical, std::move(parents));
}

Topology Topology::from_parents(TopologyKind kind,
                                std::vector<std::optional<ProxyId>> parents) {
  return Topology(kind, std::move(parents));
}

Topology::Topology(TopologyKind kind, std::vector<std::optional<ProxyId>> parents)
    : kind_(kind), parents_(std::move(parents)) {
  if (parents_.empty()) throw std::invalid_argument("Topology: empty group");

  std::unordered_set<ProxyId> has_children;
  for (std::size_t p = 0; p < parents_.size(); ++p) {
    if (!parents_[p]) continue;
    const ProxyId parent = *parents_[p];
    if (parent >= parents_.size() || parent == p) {
      throw std::invalid_argument("Topology: bad parent id");
    }
    has_children.insert(parent);
  }

  // Cycle check: walk every parent chain; it must terminate within
  // num_proxies steps.
  for (std::size_t p = 0; p < parents_.size(); ++p) {
    std::optional<ProxyId> cursor = parents_[p];
    std::size_t steps = 0;
    while (cursor) {
      if (++steps > parents_.size()) throw std::invalid_argument("Topology: parent cycle");
      cursor = parents_[*cursor];
    }
  }

  for (std::size_t p = 0; p < parents_.size(); ++p) {
    if (kind_ == TopologyKind::kDistributed || has_children.count(static_cast<ProxyId>(p)) == 0) {
      client_facing_.push_back(static_cast<ProxyId>(p));
    }
  }
  if (client_facing_.empty()) {
    throw std::invalid_argument("Topology: no client-facing cache");
  }
}

std::vector<ProxyId> Topology::siblings_of(ProxyId p) const {
  if (p >= parents_.size()) throw std::invalid_argument("Topology: bad proxy id");
  std::vector<ProxyId> result;
  for (std::size_t q = 0; q < parents_.size(); ++q) {
    if (q == p) continue;
    if (parents_[q] == parents_[p]) result.push_back(static_cast<ProxyId>(q));
  }
  return result;
}

}  // namespace eacache
