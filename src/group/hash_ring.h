// Consistent-hash ring (Karger et al., STOC '97 / WWW8 — the paper's
// reference [8]) mapping documents to a home proxy.
//
// Used by the hash-partition routing baseline: instead of replicating
// documents where they are requested (ad-hoc) or contention-aware copies
// (EA), each document lives at exactly one home cache determined by the
// ring. Virtual nodes smooth the load; removing a proxy only remaps the
// documents that lived on its arcs (the property that motivated consistent
// hashing for web caching in the first place).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace eacache {

class HashRing {
 public:
  /// `virtual_nodes` ring points per proxy (>= 1); more = smoother balance.
  explicit HashRing(std::size_t virtual_nodes = 64);

  void add_proxy(ProxyId proxy);
  /// Removes a proxy and its ring points. Returns false if absent.
  bool remove_proxy(ProxyId proxy);

  [[nodiscard]] bool contains(ProxyId proxy) const;
  [[nodiscard]] std::size_t num_proxies() const { return proxies_.size(); }

  /// The home proxy of a document: owner of the first ring point at or
  /// after hash(document). Throws std::logic_error on an empty ring.
  [[nodiscard]] ProxyId home_of(DocumentId document) const;

  /// The first `count` DISTINCT proxies along the ring from the document's
  /// position — the standard replica set construction (used by the
  /// failure-tolerance ablation). Returns fewer if the ring is smaller.
  [[nodiscard]] std::vector<ProxyId> successors_of(DocumentId document,
                                                   std::size_t count) const;

 private:
  std::size_t virtual_nodes_;
  std::map<std::uint64_t, ProxyId> ring_;
  std::vector<ProxyId> proxies_;
};

}  // namespace eacache
