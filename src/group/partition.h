// Deterministic topology partitioning for the sharded simulation engine.
//
// The sharded engine (sim/shard_engine.h) gives each shard its own event
// queue, clock and disjoint subset of the group's proxies; everything that
// crosses the cut becomes an explicit shard-crossing message. The cut is
// computed here, as a pure function of (topology, requested shards):
//
//  * client-facing proxies are split into contiguous blocks in client_facing
//    order (ascending ids), balanced to within one proxy — contiguity keeps
//    sibling clusters of hierarchical topologies mostly shard-local, which
//    is what bounds cross-shard ICP traffic;
//  * every internal (non-client-facing) cache joins the shard of its
//    lowest-id client-facing descendant, so each internal node shares a
//    shard with at least one of its children;
//  * the requested shard count is clamped to the client-facing count (a
//    shard with no client-facing proxy would never admit a request).
//
// Determinism is load-bearing: the partition feeds the engine's
// shards=1-vs-N byte-identity guarantee, so the function must return the
// same cut on every call, on every platform, for the same inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "group/topology.h"

namespace eacache {

struct TopologyPartition {
  /// Effective shard count (requested, clamped to client-facing proxies).
  std::size_t shards = 1;
  /// shard_of[proxy id] — every proxy is assigned exactly one shard.
  std::vector<std::uint32_t> shard_of;
  /// members[shard] — that shard's proxy ids, ascending. Never empty.
  std::vector<std::vector<ProxyId>> members;
};

/// Partition `topology` into (up to) `shards` shards. `shards` must be
/// >= 1 (throws std::invalid_argument otherwise).
[[nodiscard]] TopologyPartition partition_topology(const Topology& topology,
                                                   std::size_t shards);

}  // namespace eacache
