#include "group/partition.h"

#include <algorithm>
#include <stdexcept>

namespace eacache {

namespace {

constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);

/// Lowest-id client-facing descendant of `p` (p itself when client-facing).
/// Iterative over the child lists; memoized in `min_leaf`.
ProxyId min_client_leaf(ProxyId p, const std::vector<std::vector<ProxyId>>& children,
                        const std::vector<bool>& is_client_facing,
                        std::vector<ProxyId>& min_leaf) {
  if (min_leaf[p] != static_cast<ProxyId>(-1)) return min_leaf[p];
  ProxyId best = static_cast<ProxyId>(-1);
  if (is_client_facing[p]) {
    best = p;
  } else {
    for (const ProxyId child : children[p]) {
      const ProxyId leaf = min_client_leaf(child, children, is_client_facing, min_leaf);
      best = std::min(best, leaf);
    }
  }
  min_leaf[p] = best;
  return best;
}

}  // namespace

TopologyPartition partition_topology(const Topology& topology, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("partition_topology: shards must be >= 1");
  }
  const std::size_t n = topology.num_proxies();
  const std::vector<ProxyId>& facing = topology.client_facing();

  TopologyPartition partition;
  partition.shards = std::min(shards, facing.size());
  partition.shard_of.assign(n, kUnassigned);

  // Contiguous balanced blocks over the client-facing order: the first
  // `remainder` shards take one extra proxy.
  const std::size_t base = facing.size() / partition.shards;
  const std::size_t remainder = facing.size() % partition.shards;
  std::size_t next = 0;
  for (std::size_t s = 0; s < partition.shards; ++s) {
    const std::size_t block = base + (s < remainder ? 1 : 0);
    for (std::size_t i = 0; i < block; ++i) {
      partition.shard_of[facing[next++]] = static_cast<std::uint32_t>(s);
    }
  }

  // Internal caches follow their lowest-id client-facing descendant.
  std::vector<std::vector<ProxyId>> children(n);
  std::vector<bool> is_client_facing(n, false);
  for (const ProxyId p : facing) is_client_facing[p] = true;
  for (ProxyId p = 0; p < static_cast<ProxyId>(n); ++p) {
    if (const auto parent = topology.parent_of(p)) children[*parent].push_back(p);
  }
  std::vector<ProxyId> min_leaf(n, static_cast<ProxyId>(-1));
  for (ProxyId p = 0; p < static_cast<ProxyId>(n); ++p) {
    if (partition.shard_of[p] != kUnassigned) continue;
    const ProxyId leaf = min_client_leaf(p, children, is_client_facing, min_leaf);
    partition.shard_of[p] = partition.shard_of[leaf];
  }

  partition.members.assign(partition.shards, {});
  for (ProxyId p = 0; p < static_cast<ProxyId>(n); ++p) {
    partition.members[partition.shard_of[p]].push_back(p);
  }
  return partition;
}

}  // namespace eacache
