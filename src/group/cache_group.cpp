#include "group/cache_group.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/hash.h"

namespace eacache {

namespace {

/// Validation gate for the constructor: runs before any member that depends
/// on the config (the topology is built in the initializer list).
const GroupConfig& validated(const GroupConfig& config) {
  config.validate_or_throw();
  return config;
}

}  // namespace

Topology topology_from(const GroupConfig& config) {
  if (!config.custom_parents.empty()) {
    return Topology::from_parents(TopologyKind::kHierarchical, config.custom_parents);
  }
  switch (config.topology) {
    case TopologyKind::kDistributed: return Topology::distributed(config.num_proxies);
    case TopologyKind::kHierarchical: return Topology::two_level(config.num_proxies);
  }
  throw std::invalid_argument("topology_from: bad topology kind");
}

std::vector<Bytes> cache_budgets(const GroupConfig& config, std::size_t total_caches) {
  std::vector<Bytes> budgets(total_caches, config.aggregate_capacity / total_caches);
  if (!config.capacity_weights.empty()) {
    double weight_sum = 0.0;
    for (const double w : config.capacity_weights) weight_sum += w;
    for (std::size_t p = 0; p < total_caches; ++p) {
      budgets[p] = static_cast<Bytes>(static_cast<double>(config.aggregate_capacity) *
                                      config.capacity_weights[p] / weight_sum);
    }
  }
  return budgets;
}

ProxyId home_proxy_in(const Topology& topology, UserId user) {
  const auto& facing = topology.client_facing();
  return facing[mix64(user) % facing.size()];
}

void sort_by_ring_distance(std::vector<ProxyId>& peers, ProxyId requester,
                           std::size_t num_caches) {
  std::sort(peers.begin(), peers.end(), [&](ProxyId a, ProxyId b) {
    return (a + num_caches - requester) % num_caches <
           (b + num_caches - requester) % num_caches;
  });
}

std::size_t GroupConfig::total_cache_count() const {
  if (!custom_parents.empty()) return custom_parents.size();
  return num_proxies + (topology == TopologyKind::kHierarchical ? 1 : 0);
}

std::vector<std::string> GroupConfig::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  if (custom_parents.empty() && num_proxies == 0) {
    fail("num_proxies must be positive");
  }
  if (!custom_parents.empty() && topology != TopologyKind::kHierarchical) {
    fail("custom_parents requires the kHierarchical topology");
  }

  const std::size_t total_caches = total_cache_count();
  bool weights_usable = true;
  if (!capacity_weights.empty()) {
    if (capacity_weights.size() != total_caches) {
      fail("capacity_weights has " + std::to_string(capacity_weights.size()) +
           " entries but the group has " + std::to_string(total_caches) + " caches");
      weights_usable = false;
    }
    for (const double w : capacity_weights) {
      if (!(w > 0.0)) {
        fail("capacity_weights entries must be positive");
        weights_usable = false;
        break;
      }
    }
  }
  if (total_caches > 0 && weights_usable) {
    for (const Bytes budget : cache_budgets(*this, total_caches)) {
      if (budget == 0) {
        fail("aggregate_capacity too small: some cache's budget rounds to zero bytes");
        break;
      }
    }
  }

  if (coherence.enabled) {
    if (coherence.fresh_ttl <= Duration::zero()) {
      fail("coherence.fresh_ttl must be positive");
    }
    if (coherence.rule == FreshnessRule::kLmFactor &&
        (!(coherence.lm_factor > 0.0) || coherence.min_ttl <= Duration::zero() ||
         coherence.max_ttl < coherence.min_ttl)) {
      fail("coherence LM-factor parameters are inconsistent (lm_factor > 0, "
           "0 < min_ttl <= max_ttl required)");
    }
  }

  if (routing == RoutingMode::kHashPartition) {
    if (topology != TopologyKind::kDistributed) {
      fail("hash partitioning requires a flat (kDistributed) group");
    }
    if (placement != PlacementKind::kAdHoc) {
      fail("hash partitioning IS the placement scheme; placement must be kAdHoc");
    }
    if (prefetch.enabled) {
      fail("prefetching is a cooperative-mode feature (document homes are fixed "
           "under hash partitioning)");
    }
  }

  if (prefetch.enabled &&
      !(prefetch.min_confidence >= 0.0 && prefetch.min_confidence <= 1.0)) {
    fail("prefetch.min_confidence must be in [0, 1]");
  }

  if (icp_loss_probability < 0.0 || icp_loss_probability > 1.0) {
    fail("icp_loss_probability must be in [0, 1]");
  }

  if (pipeline.event_driven) {
    if (pipeline.icp_timeout <= Duration::zero()) {
      fail("pipeline.icp_timeout must be positive");
    } else if (pipeline.icp_timeout <= latency.icp_rtt) {
      fail("pipeline.icp_timeout must exceed latency.icp_rtt (replies would "
           "always time out)");
    }
  } else if (pipeline.icp_retries > 0 || pipeline.coalesce) {
    fail("pipeline.icp_retries / pipeline.coalesce require pipeline.event_driven");
  }
  if (!(pipeline.retry_backoff >= 1.0)) {
    fail("pipeline.retry_backoff must be >= 1");
  }

  if (placement_override && placement_override->kind() != placement) {
    fail("placement_override's kind() disagrees with the `placement` enum");
  }

  return errors;
}

std::vector<std::string> GroupConfig::validate_for_daemon() const {
  std::vector<std::string> errors = validate();
  const auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  if (topology != TopologyKind::kDistributed || !custom_parents.empty()) {
    fail("daemon mode serves flat (kDistributed) groups only: the hierarchical "
         "parent chain is resolved recursively by the simulator's orchestrator");
  }
  if (routing == RoutingMode::kHashPartition) {
    fail("daemon mode requires kCooperative routing (hash-partition forwarding "
         "is a simulator baseline)");
  }
  if (discovery == DiscoveryMode::kDigest) {
    fail("daemon mode requires kIcp discovery (digest refresh is scheduled by "
         "the simulated clock)");
  }
  if (coherence.enabled) {
    fail("daemon mode cannot run coherence: freshness checks consult the "
         "simulated origin's version oracle");
  }
  if (prefetch.enabled) {
    fail("daemon mode cannot run prefetching: speculative fetches are "
         "orchestrated group-side in the simulator");
  }
  if (icp_loss_probability != 0.0) {
    fail("daemon mode requires icp_loss_probability == 0: the in-memory wire "
         "never drops, so the seeded loss draw has nothing to model");
  }
  if (pipeline.event_driven) {
    fail("daemon mode has real concurrency; pipeline.event_driven selects the "
         "simulator's staged driver and must stay off");
  }
  if (obs.trace_capacity > 0) {
    fail("daemon mode does not record request spans: the span ring is "
         "single-writer and belongs to the simulator's orchestrator");
  }
  return errors;
}

void GroupConfig::validate_or_throw() const {
  const std::vector<std::string> errors = validate();
  if (errors.empty()) return;
  std::string message = "invalid GroupConfig: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) message += "; ";
    message += errors[i];
  }
  throw std::invalid_argument(message);
}

CacheGroup::CacheGroup(const GroupConfig& config)
    : config_(validated(config)),
      topology_(topology_from(config_)),
      placement_(config_.placement_override
                     ? config_.placement_override
                     : std::shared_ptr<const PlacementPolicy>(
                           make_placement(config_.placement, config_.ea_hysteresis))),
      registry_(config.obs.registry),
      trace_log_(config.obs.trace_capacity),
      transport_(config.wire),
      digest_directory_(config.digest) {
  const std::size_t total_caches = topology_.num_proxies();
  const std::vector<Bytes> budgets = cache_budgets(config_, total_caches);

  const DigestConfig* digest =
      config_.discovery == DiscoveryMode::kDigest ? &config_.digest : nullptr;
  proxies_.reserve(total_caches);
  for (std::size_t p = 0; p < total_caches; ++p) {
    proxies_.push_back(std::make_unique<ProxyCache>(
        static_cast<ProxyId>(p), budgets[p], make_policy(config_.replacement), config_.window,
        placement_.get(), digest, &registry_));
  }
  last_digest_publish_.assign(total_caches, kSimEpoch);
  digest_published_once_.assign(total_caches, false);

  transport_.bind_registry(&registry_, total_caches);
  if (registry_.enabled()) {
    obs_requests_ = registry_.counter("group.requests");
    obs_icp_queries_ = registry_.counter("group.icp.queries");
    obs_icp_replies_ = registry_.counter("group.icp.replies");
    obs_icp_losses_ = registry_.counter("group.icp.losses");
    obs_sibling_fetches_ = registry_.counter("group.sibling_fetches");
    obs_parent_fetches_ = registry_.counter("group.parent_fetches");
    obs_origin_fetches_ = registry_.counter("group.origin_fetches");
    obs_request_bytes_ = registry_.histogram("group.request_bytes", 0.0,
                                             static_cast<double>(kMiB), 64);
  }

  if (config_.coherence.enabled) origin_.emplace(config_.origin);

  if (config_.routing == RoutingMode::kHashPartition) {
    hash_ring_.emplace(config_.hash_virtual_nodes);
    for (const ProxyId p : topology_.client_facing()) hash_ring_->add_proxy(p);
  }

  if (config_.prefetch.enabled) {
    predictors_.assign(total_caches, MarkovPredictor{});
    pending_prefetch_.assign(total_caches, {});
  }

  network_rng_.reseed(config_.network_seed);
}

std::size_t CacheGroup::pending_prefetches() const {
  // Only copies still resident are genuinely "pending" — a speculative
  // copy evicted before any demand was simply wasted.
  std::size_t pending = 0;
  for (std::size_t p = 0; p < pending_prefetch_.size(); ++p) {
    for (const DocumentId id : pending_prefetch_[p]) {
      if (proxies_[p]->store().contains(id)) ++pending;
    }
  }
  return pending;
}

void CacheGroup::learn_and_prefetch(ProxyCache& requester, const Request& request,
                                    TimePoint now) {
  const ProxyId p = requester.id();
  known_sizes_[request.document] = request.size;

  // Learn the per-user transition.
  const auto [it, inserted] = last_document_.try_emplace(request.user, request.document);
  if (!inserted) {
    if (it->second != request.document) {
      predictors_[p].observe(it->second, request.document);
    }
    it->second = request.document;
  }

  // Act on a confident prediction: speculative origin fetch into this proxy.
  const auto prediction = predictors_[p].predict(request.document);
  if (!prediction || prediction->confidence < config_.prefetch.min_confidence ||
      prediction->observations < config_.prefetch.min_observations) {
    return;
  }
  if (requester.store().contains(prediction->document)) return;
  const auto size_it = known_sizes_.find(prediction->document);
  if (size_it == known_sizes_.end()) return;  // size unknown: cannot speculate

  Document speculative{prediction->document, size_it->second, 0};
  if (origin_) speculative.version = origin_->version_at(speculative.id, now);
  note_origin_fetch(p, speculative, now, /*speculative=*/true);
  requester.cache_after_origin_fetch(speculative, now);
  if (requester.store().contains(speculative.id)) {
    pending_prefetch_[p].insert(speculative.id);
    ++prefetch_stats_.issued;
    prefetch_stats_.bytes_prefetched += speculative.size;
  }
}

void CacheGroup::refresh_digests(TimePoint now) {
  for (std::size_t p = 0; p < proxies_.size(); ++p) {
    if (digest_published_once_[p] && now - last_digest_publish_[p] < config_.digest.refresh_period) {
      continue;
    }
    BloomFilter snapshot = proxies_[p]->publish_digest();
    const Bytes wire_size = snapshot.wire_size();
    digest_directory_.update(static_cast<ProxyId>(p), std::move(snapshot), now);
    // Broadcast cost: one message per receiving peer.
    for (std::size_t q = 0; q < proxies_.size(); ++q) {
      if (q == p) continue;
      transport_.record_digest_publication(
          DigestPublication{static_cast<ProxyId>(p), static_cast<ProxyId>(q), wire_size});
    }
    last_digest_publish_[p] = now;
    digest_published_once_[p] = true;
  }
}

void CacheGroup::sort_by_ring_distance(std::vector<ProxyId>& peers, ProxyId requester) const {
  eacache::sort_by_ring_distance(peers, requester, proxies_.size());
}

bool CacheGroup::peer_down(ProxyId proxy, TimePoint at) const {
  for (const PeerOutage& outage : outages_) {
    if (outage.proxy == proxy && at >= outage.start && at < outage.end) return true;
  }
  return false;
}

std::vector<ProxyId> CacheGroup::probe_targets(ProxyId requester) const {
  std::vector<ProxyId> targets = topology_.siblings_of(requester);
  if (const auto parent = topology_.parent_of(requester)) targets.push_back(*parent);
  return targets;
}

CacheGroup::ProbeResult CacheGroup::probe_peer(ProxyCache& requester, ProxyId target,
                                               const Request& request, TimePoint now) {
  const IcpQuery query{requester.id(), target, request.document};
  transport_.record_icp_query(query);
  obs_icp_queries_.inc();
  // UDP is best-effort: a lost query or reply looks like a peer miss and
  // the requester falls back to the origin (a duplicate fetch). A peer in
  // an injected outage window behaves exactly like a loss — it never
  // answers. The outage check precedes the RNG draw so that configurations
  // without outages consume loss draws identically with or without this
  // feature compiled into the flow.
  const bool down = peer_down(target, now);
  if (down || (config_.icp_loss_probability > 0.0 &&
               network_rng_.next_bool(config_.icp_loss_probability))) {
    transport_.record_icp_loss();
    obs_icp_losses_.inc();
    if (trace_log_.enabled()) {
      SpanEvent event;
      event.request = current_request_;
      event.at_ms = sim_ms(now);
      event.document = request.document;
      event.proxy = requester.id();
      event.peer = static_cast<std::int32_t>(target);
      event.kind = SpanKind::kIcpLoss;
      trace_log_.record(event);
    }
    return ProbeResult::kLost;
  }
  // A proxy only advertises copies it could legally serve: with coherence
  // on, TTL-stale copies answer "miss".
  const bool hit = copy_is_fresh(*proxies_[target], request.document, now);
  proxies_[target]->note_icp_answer(hit);
  transport_.record_icp_reply(IcpReply{target, requester.id(), request.document, hit});
  obs_icp_replies_.inc();
  if (trace_log_.enabled()) {
    SpanEvent event;
    event.request = current_request_;
    event.at_ms = sim_ms(now);
    event.document = request.document;
    event.proxy = requester.id();
    event.peer = static_cast<std::int32_t>(target);
    event.kind = SpanKind::kIcpProbe;
    event.flag = hit ? 1 : 0;
    trace_log_.record(event);
  }
  return hit ? ProbeResult::kHit : ProbeResult::kMiss;
}

std::vector<ProxyId> CacheGroup::digest_candidates(ProxyId requester,
                                                   DocumentId document) const {
  const std::vector<ProxyId> claimed = digest_directory_.candidates(document);
  std::vector<ProxyId> candidates;
  for (const ProxyId target : probe_targets(requester)) {
    if (std::binary_search(claimed.begin(), claimed.end(), target)) {
      candidates.push_back(target);
    }
  }
  return candidates;
}

std::vector<ProxyId> CacheGroup::discover_candidates(ProxyCache& requester,
                                                     const Request& request) {
  std::vector<ProxyId> candidates;
  if (config_.discovery == DiscoveryMode::kIcp) {
    for (const ProxyId target : probe_targets(requester.id())) {
      if (probe_peer(requester, target, request, request.at) == ProbeResult::kHit) {
        candidates.push_back(target);
      }
    }
  } else {
    candidates = digest_candidates(requester.id(), request.document);
  }
  sort_by_ring_distance(candidates, requester.id());
  return candidates;
}

Document CacheGroup::document_from(const Request& request, TimePoint now) const {
  Document document{request.document, request.size, 0};
  if (origin_) document.version = origin_->version_at(request.document, now);
  return document;
}

Duration CacheGroup::freshness_lifetime(const CacheEntry& entry) const {
  const CoherenceConfig& coherence = config_.coherence;
  if (coherence.rule == FreshnessRule::kFixedTtl) return coherence.fresh_ttl;
  // Squid's LM-factor heuristic: a document unchanged for a long time is
  // unlikely to change soon.
  const TimePoint modified = origin_->version_start(entry.id, entry.version);
  const Duration age_when_validated =
      entry.last_validated > modified ? entry.last_validated - modified : Duration::zero();
  const auto lifetime = Duration{static_cast<SimClock::rep>(
      coherence.lm_factor * static_cast<double>(age_when_validated.count()))};
  return std::clamp(lifetime, coherence.min_ttl, coherence.max_ttl);
}

bool CacheGroup::copy_is_fresh(const ProxyCache& proxy, DocumentId document,
                               TimePoint now) const {
  const auto entry = proxy.store().peek(document);
  if (!entry) return false;
  if (!coherence_on()) return true;
  return now - entry->last_validated < freshness_lifetime(*entry);
}

CacheGroup::LocalLookup CacheGroup::local_lookup(ProxyCache& proxy, const Request& request,
                                                 TimePoint now) {
  const auto entry = proxy.store().peek(request.document);
  if (!entry) return {LocalState::kMiss, 0};

  const auto trace_local_hit = [&](Bytes size, bool validated) {
    if (!trace_log_.enabled()) return;
    SpanEvent event;
    event.request = current_request_;
    event.at_ms = sim_ms(now);
    event.document = request.document;
    event.proxy = proxy.id();
    event.kind = SpanKind::kLocalHit;
    event.flag = validated ? 1 : 0;
    event.value = static_cast<std::int64_t>(size);
    trace_log_.record(event);
  };

  if (!coherence_on()) {
    const auto size = proxy.serve_local(request.document, now);
    trace_local_hit(*size, false);
    return {LocalState::kFreshHit, *size};
  }

  const std::uint64_t current = origin_->version_at(request.document, now);
  if (now - entry->last_validated < freshness_lifetime(*entry)) {
    // TTL-fresh: served without contacting the origin. The oracle tells us
    // whether that quietly served stale content.
    if (entry->version != current) ++coherence_stats_.stale_served;
    const auto size = proxy.serve_local(request.document, now);
    trace_local_hit(*size, false);
    return {LocalState::kFreshHit, *size};
  }

  // TTL expired: If-Modified-Since round trip to the origin.
  ++coherence_stats_.validations;
  if (entry->version == current) {
    ++coherence_stats_.validated_304;
    proxy.mark_validated(request.document, now);
    const auto size = proxy.serve_local(request.document, now);
    trace_local_hit(*size, true);
    return {LocalState::kValidatedHit, *size};
  }
  // Changed at the origin: the 200 reply replaces the body; the old copy
  // is dropped here and the caller completes the origin fetch.
  ++coherence_stats_.validated_200;
  proxy.invalidate(request.document, now);
  return {LocalState::kChanged, 0};
}

ProxyId CacheGroup::home_proxy(UserId user) const { return home_proxy_in(topology_, user); }

void CacheGroup::flush_proxy(ProxyId proxy, TimePoint now) {
  proxies_.at(proxy)->flush(now);
}

std::uint64_t CacheGroup::begin_request(ProxyCache& requester, const Request& request) {
  requester.note_client_request();
  current_request_ = request_seq_++;
  obs_requests_.inc();
  obs_request_bytes_.observe(static_cast<double>(request.size));
  if (trace_log_.enabled()) {
    SpanEvent event;
    event.request = current_request_;
    event.at_ms = sim_ms(request.at);
    event.document = request.document;
    event.proxy = requester.id();
    event.kind = SpanKind::kArrival;
    event.value = static_cast<std::int64_t>(request.size);
    trace_log_.record(event);
  }
  return current_request_;
}

void CacheGroup::record_complete_span(ProxyId proxy, DocumentId document,
                                      std::uint64_t request_id, TimePoint at,
                                      RequestOutcome outcome) {
  if (!trace_log_.enabled()) return;
  SpanEvent event;
  event.request = request_id;
  event.at_ms = sim_ms(at);
  event.document = document;
  event.proxy = proxy;
  event.kind = SpanKind::kComplete;
  event.value = static_cast<std::int64_t>(outcome);
  trace_log_.record(event);
}

RequestOutcome CacheGroup::serve(const Request& request) {
  if (config_.discovery == DiscoveryMode::kDigest) refresh_digests(request.at);
  ProxyCache& requester = *proxies_[home_proxy(request.user)];
  const std::uint64_t request_id = begin_request(requester, request);

  Resolution resolved;
  if (config_.routing == RoutingMode::kHashPartition) {
    resolved = resolve_hash_partition(requester, request, request.at);
    metrics_.record(resolved.outcome, resolved.bytes, resolved.latency);
  } else {
    // A speculative copy stops being speculative the moment it is demanded.
    const bool was_prefetched =
        config_.prefetch.enabled &&
        pending_prefetch_[requester.id()].erase(request.document) > 0;

    resolved = resolve_cooperative(requester, request, request.at);
    metrics_.record(resolved.outcome, resolved.bytes, resolved.latency);

    if (config_.prefetch.enabled) {
      if (was_prefetched && resolved.outcome == RequestOutcome::kLocalHit) {
        ++prefetch_stats_.useful;
      }
      learn_and_prefetch(requester, request, request.at);
    }
  }

  record_complete_span(requester.id(), request.document, request_id, request.at,
                       resolved.outcome);
  return resolved.outcome;
}

CacheGroup::Resolution CacheGroup::resolve_hash_partition(ProxyCache& requester,
                                                          const Request& request,
                                                          TimePoint now) {
  const ProxyId home_id = hash_ring_->home_of(request.document);

  const Document document = document_from(request, now);

  if (home_id == requester.id()) {
    // The requester IS the document's home.
    const LocalLookup local = local_lookup(requester, request, now);
    if (local.state == LocalState::kFreshHit) {
      return {RequestOutcome::kLocalHit, local.size, config_.latency.local_hit};
    }
    if (local.state == LocalState::kValidatedHit) {
      return {RequestOutcome::kLocalHit, local.size,
              config_.latency.local_hit + config_.coherence.validation_rtt};
    }
    note_origin_fetch(requester.id(), document, now, /*speculative=*/false);
    if (!requester.store().contains(document.id)) {
      requester.cache_after_origin_fetch(document, now);
    }
    return {RequestOutcome::kMiss, document.size, config_.latency.miss};
  }

  // Forward to the home cache; the requester never keeps a copy (pure
  // partitioning: the aggregate disk holds at most one copy per document).
  ProxyCache& home = *proxies_[home_id];
  HttpRequest forward;
  forward.from = requester.id();
  forward.to = home_id;
  forward.document = request.document;
  transport_.record_http_request(forward);

  const LocalLookup at_home = local_lookup(home, request, now);
  if (at_home.state == LocalState::kFreshHit || at_home.state == LocalState::kValidatedHit) {
    HttpResponse response;
    response.from = home_id;
    response.to = requester.id();
    response.document = request.document;
    response.body_size = at_home.size;
    response.source = ResponseSource::kCache;
    transport_.record_http_response(response);
    const Duration extra = at_home.state == LocalState::kValidatedHit
                               ? config_.coherence.validation_rtt
                               : Duration::zero();
    return {RequestOutcome::kRemoteHit, at_home.size, config_.latency.remote_hit + extra};
  }

  // Home miss (or changed at origin): the home fetches and keeps the copy.
  note_origin_fetch(home_id, document, now, /*speculative=*/false);
  if (!home.store().contains(document.id)) {
    home.cache_after_origin_fetch(document, now);
  }
  HttpResponse response;
  response.from = home_id;
  response.to = requester.id();
  response.document = request.document;
  response.body_size = document.size;
  response.source = ResponseSource::kOrigin;
  transport_.record_http_response(response);
  return {RequestOutcome::kMiss, document.size, config_.latency.miss};
}

CacheGroup::Resolution CacheGroup::resolve_cooperative(ProxyCache& requester,
                                                       const Request& request, TimePoint now) {
  // 1. Local lookup (a promoting hit if resident; with coherence on this
  // runs the freshness/validation state machine).
  const LocalLookup local = local_lookup(requester, request, now);
  switch (local.state) {
    case LocalState::kFreshHit:
      return {RequestOutcome::kLocalHit, local.size, config_.latency.local_hit};
    case LocalState::kValidatedHit:
      return {RequestOutcome::kLocalHit, local.size,
              config_.latency.local_hit + config_.coherence.validation_rtt};
    case LocalState::kChanged: {
      // The If-Modified-Since reply carried the new body: an origin fetch.
      const Document document = document_from(request, now);
      note_origin_fetch(requester.id(), document, now, /*speculative=*/false);
      if (!requester.store().contains(document.id)) {
        requester.cache_after_origin_fetch(document, now);
      }
      return {RequestOutcome::kMiss, document.size, config_.latency.miss};
    }
    case LocalState::kMiss:
      break;
  }

  // 2. Locate peer copies: ICP fan-out (exact) or digest lookup
  // (approximate), best candidate first.
  const std::vector<ProxyId> candidates = discover_candidates(requester, request);

  // 3. Fetch through the candidates, falling back to the group-miss
  // resolution.
  return try_candidates(requester, request, candidates, now);
}

CacheGroup::Resolution CacheGroup::try_candidates(ProxyCache& requester, const Request& request,
                                                  const std::vector<ProxyId>& candidates,
                                                  TimePoint now) {
  // Fetch from the first candidate that actually has the document. ICP
  // candidates always do (in the synchronous driver); digest candidates can
  // be stale, and under the event-driven driver an ICP candidate may have
  // evicted the copy while the reply was in flight. Failed probes
  // accumulate a latency penalty that carries into whatever resolves the
  // request.
  Duration probe_penalty = Duration::zero();
  for (const ProxyId responder_id : candidates) {
    ProxyCache& responder = *proxies_[responder_id];

    HttpRequest fetch;
    fetch.from = requester.id();
    fetch.to = responder_id;
    fetch.document = request.document;
    if (placement_->kind() != PlacementKind::kAdHoc) {
      fetch.requester_age = requester.expiration_age(now);
    }
    transport_.record_http_request(fetch);
    obs_sibling_fetches_.inc();

    // Stale candidates answer in two ways: the copy is gone, or (with
    // coherence on) it is TTL-expired and the responder will not serve it.
    HttpResponse response;
    if (coherence_on() && responder.store().contains(request.document) &&
        !copy_is_fresh(responder, request.document, now)) {
      response.from = responder_id;
      response.to = requester.id();
      response.document = request.document;
      response.found = false;
    } else {
      response = responder.serve_fetch(fetch, now);
    }
    transport_.record_http_response(response);
    if (trace_log_.enabled()) {
      SpanEvent event;
      event.request = current_request_;
      event.at_ms = sim_ms(now);
      event.document = request.document;
      event.proxy = requester.id();
      event.peer = static_cast<std::int32_t>(responder_id);
      event.kind = SpanKind::kSiblingFetch;
      event.requester_ea_ms = ea_ms(fetch.requester_age);
      event.responder_ea_ms = ea_ms(response.responder_age);
      event.flag = response.found ? 1 : 0;
      if (response.found) event.value = static_cast<std::int64_t>(response.body_size);
      trace_log_.record(event);
    }
    if (!response.found) {
      probe_penalty += config_.latency.failed_probe;
      continue;
    }

    if (coherence_on() && response.version != document_from(request, now).version) {
      ++coherence_stats_.stale_served;
    }
    const bool kept = requester.consider_caching(
        Document{request.document, response.body_size, response.version},
        response.responder_age, now,
        coherence_on() ? std::optional<TimePoint>(response.validated_at) : std::nullopt);
    trace_placement(requester.id(), request.document, now, response.body_size,
                    fetch.requester_age, response.responder_age, kept);
    return {RequestOutcome::kRemoteHit, response.body_size,
            config_.latency.remote_hit + probe_penalty};
  }

  return resolve_group_miss(requester, request, probe_penalty, now);
}

CacheGroup::Resolution CacheGroup::resolve_group_miss(ProxyCache& requester,
                                                      const Request& request,
                                                      Duration probe_penalty, TimePoint now) {
  const auto parent = topology_.parent_of(requester.id());

  if (!parent) {
    // 4. Distributed architecture: fetch from the origin, cache locally
    // (conventional step — identical under both schemes).
    const Document document = document_from(request, now);
    note_origin_fetch(requester.id(), document, now, /*speculative=*/false);
    if (!requester.store().contains(document.id)) {
      requester.cache_after_origin_fetch(document, now);
    }
    return {RequestOutcome::kMiss, document.size, config_.latency.miss + probe_penalty};
  }

  // 5. Hierarchical architecture: the parent chain resolves the miss.
  const HttpResponse response = fetch_via_parent(requester, *parent, request, now);
  const bool kept = requester.consider_caching(
      Document{request.document, response.body_size, response.version},
      response.responder_age, now,
      coherence_on() ? std::optional<TimePoint>(response.validated_at) : std::nullopt);
  trace_placement(requester.id(), request.document, now, response.body_size, std::nullopt,
                  response.responder_age, kept);
  if (response.source == ResponseSource::kCache) {
    // A cache above the ICP horizon (grandparent or higher) had the
    // document: the group served it after all.
    return {RequestOutcome::kRemoteHit, response.body_size,
            config_.latency.remote_hit + probe_penalty};
  }
  return {RequestOutcome::kMiss, response.body_size, config_.latency.miss + probe_penalty};
}

HttpResponse CacheGroup::fetch_via_parent(ProxyCache& child, ProxyId parent_id,
                                          const Request& request, TimePoint now) {
  ProxyCache& parent = *proxies_[parent_id];

  HttpRequest hop;
  hop.from = child.id();
  hop.to = parent_id;
  hop.document = request.document;
  if (placement_->kind() != PlacementKind::kAdHoc) {
    hop.requester_age = child.expiration_age(now);
  }
  transport_.record_http_request(hop);
  obs_parent_fetches_.inc();

  // A TTL-stale copy at the parent cannot be served; it will be replaced by
  // the fresh body flowing down, so drop it now (admission below would
  // otherwise be blocked by the stale resident).
  if (coherence_on() && parent.store().contains(request.document) &&
      !copy_is_fresh(parent, request.document, now)) {
    parent.invalidate(request.document, now);
  }

  HttpResponse response;
  if (parent.store().contains(request.document)) {
    // Reachable above the ICP horizon (the direct parent answered a
    // negative ICP probe just now) and, under the event-driven driver, when
    // a concurrent request populated the parent meanwhile: a cache hit at a
    // higher level.
    response = parent.serve_remote(hop, now);
  } else if (const auto grandparent = topology_.parent_of(parent_id)) {
    // The parent obtains the document through its own parent, deciding as a
    // requester whether to keep a copy, then answers the child with its own
    // expiration age.
    const HttpResponse upper = fetch_via_parent(parent, *grandparent, request, now);
    const bool kept = parent.consider_caching(
        Document{request.document, upper.body_size, upper.version}, upper.responder_age, now,
        coherence_on() ? std::optional<TimePoint>(upper.validated_at) : std::nullopt);
    trace_placement(parent_id, request.document, now, upper.body_size, std::nullopt,
                    upper.responder_age, kept);
    response.from = parent_id;
    response.to = child.id();
    response.document = request.document;
    response.body_size = upper.body_size;
    response.source = upper.source;
    response.version = upper.version;
    response.validated_at = upper.validated_at;
    if (placement_->kind() != PlacementKind::kAdHoc) {
      response.responder_age = parent.expiration_age(now);
    }
  } else {
    // Top of the chain: fetch from the origin; the parent placement rule
    // (paper section 3.3) decides whether this cache keeps a copy.
    const Document document = document_from(request, now);
    note_origin_fetch(parent_id, document, now, /*speculative=*/false);
    response = parent.resolve_miss_as_parent(document, hop, now);
  }
  transport_.record_http_response(response);
  if (trace_log_.enabled()) {
    SpanEvent event;
    event.request = current_request_;
    event.at_ms = sim_ms(now);
    event.document = request.document;
    event.proxy = child.id();
    event.peer = static_cast<std::int32_t>(parent_id);
    event.kind = SpanKind::kParentFetch;
    event.requester_ea_ms = ea_ms(hop.requester_age);
    event.responder_ea_ms = ea_ms(response.responder_age);
    event.flag = 1;  // the parent chain always resolves the document
    event.value = static_cast<std::int64_t>(response.body_size);
    trace_log_.record(event);
  }
  return response;
}

void CacheGroup::note_origin_fetch(ProxyId requester, const Document& document, TimePoint at,
                                   bool speculative) {
  transport_.record_origin_fetch(requester, document.size);
  obs_origin_fetches_.inc();
  if (trace_log_.enabled()) {
    SpanEvent event;
    event.request = current_request_;
    event.at_ms = sim_ms(at);
    event.document = document.id;
    event.proxy = requester;
    event.kind = SpanKind::kOriginFetch;
    event.flag = speculative ? 1 : 0;
    event.value = static_cast<std::int64_t>(document.size);
    trace_log_.record(event);
  }
}

void CacheGroup::trace_placement(ProxyId proxy, DocumentId document, TimePoint at, Bytes size,
                                 std::optional<ExpAge> requester_age,
                                 std::optional<ExpAge> responder_age, bool accepted) {
  if (auditor_ != nullptr) {
    auditor_->on_placement(proxy, document, at, size, requester_age, responder_age, accepted);
  }
  if (!trace_log_.enabled()) return;
  SpanEvent event;
  event.request = current_request_;
  event.at_ms = sim_ms(at);
  event.document = document;
  event.proxy = proxy;
  event.kind = SpanKind::kPlacement;
  event.requester_ea_ms = ea_ms(requester_age);
  event.responder_ea_ms = ea_ms(responder_age);
  event.flag = accepted ? 1 : 0;
  trace_log_.record(event);
}

void CacheGroup::export_final_gauges() {
  if (!registry_.enabled()) return;
  for (const auto& proxy : proxies_) {
    const std::string prefix = "proxy." + std::to_string(proxy->id()) + ".";
    registry_.gauge(prefix + "resident_bytes")
        .set(static_cast<double>(proxy->store().resident_bytes()));
    registry_.gauge(prefix + "resident_docs")
        .set(static_cast<double>(proxy->store().resident_count()));
  }
  registry_.gauge("group.replication_factor").set(replication_factor());
}

ExpAge CacheGroup::average_cache_expiration_age() const {
  double sum_ms = 0.0;
  std::size_t finite = 0;
  for (const auto& proxy : proxies_) {
    const ExpAge age = proxy->contention().lifetime_average();
    if (!age.is_infinite()) {
      sum_ms += age.millis();
      ++finite;
    }
  }
  if (finite == 0) return ExpAge::infinite();
  return ExpAge::from_millis(sum_ms / static_cast<double>(finite));
}

std::size_t CacheGroup::total_resident_copies() const {
  std::size_t total = 0;
  for (const auto& proxy : proxies_) total += proxy->store().resident_count();
  return total;
}

std::size_t CacheGroup::unique_resident_documents() const {
  std::unordered_map<DocumentId, bool> seen;
  for (const auto& proxy : proxies_) {
    for (const DocumentId id : proxy->store().resident_ids()) seen[id] = true;
  }
  return seen.size();
}

double CacheGroup::replication_factor() const {
  const std::size_t unique = unique_resident_documents();
  if (unique == 0) return 0.0;
  return static_cast<double>(total_resident_copies()) / static_cast<double>(unique);
}

}  // namespace eacache
