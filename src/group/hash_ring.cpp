#include "group/hash_ring.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"

namespace eacache {

namespace {
std::uint64_t ring_point(ProxyId proxy, std::size_t replica) {
  return hash_combine(mix64(proxy ^ 0xfeedfaceULL), replica);
}
}  // namespace

HashRing::HashRing(std::size_t virtual_nodes) : virtual_nodes_(virtual_nodes) {
  if (virtual_nodes_ == 0) throw std::invalid_argument("HashRing: need >= 1 virtual node");
}

void HashRing::add_proxy(ProxyId proxy) {
  if (contains(proxy)) throw std::logic_error("HashRing: proxy already present");
  for (std::size_t r = 0; r < virtual_nodes_; ++r) {
    // Collisions between 64-bit points are astronomically unlikely; if one
    // happens the insertion is skipped, costing one virtual node.
    ring_.emplace(ring_point(proxy, r), proxy);
  }
  proxies_.push_back(proxy);
}

bool HashRing::remove_proxy(ProxyId proxy) {
  const auto it = std::find(proxies_.begin(), proxies_.end(), proxy);
  if (it == proxies_.end()) return false;
  proxies_.erase(it);
  for (auto point = ring_.begin(); point != ring_.end();) {
    if (point->second == proxy) {
      point = ring_.erase(point);
    } else {
      ++point;
    }
  }
  return true;
}

bool HashRing::contains(ProxyId proxy) const {
  return std::find(proxies_.begin(), proxies_.end(), proxy) != proxies_.end();
}

ProxyId HashRing::home_of(DocumentId document) const {
  if (ring_.empty()) throw std::logic_error("HashRing: empty ring");
  const std::uint64_t h = mix64(document);
  const auto it = ring_.lower_bound(h);
  return it != ring_.end() ? it->second : ring_.begin()->second;
}

std::vector<ProxyId> HashRing::successors_of(DocumentId document, std::size_t count) const {
  std::vector<ProxyId> result;
  if (ring_.empty() || count == 0) return result;
  const std::uint64_t h = mix64(document);
  auto it = ring_.lower_bound(h);
  for (std::size_t steps = 0; steps < ring_.size() && result.size() < count; ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(result.begin(), result.end(), it->second) == result.end()) {
      result.push_back(it->second);
    }
    ++it;
  }
  return result;
}

}  // namespace eacache
