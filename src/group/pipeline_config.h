// Configuration and counters for the staged request pipeline.
//
// Kept in a leaf header so GroupConfig (group/cache_group.h) can embed the
// config while the driver itself (sim/request_pipeline.h) depends on the
// full CacheGroup definition.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace eacache {

/// How requests move through the group's serving machinery.
///
/// Default (event_driven = false): the legacy synchronous driver — each
/// request is served start-to-finish in one call, latencies are charged
/// from the paper's per-outcome aggregates, and results are byte-identical
/// to every release before the pipeline existed.
///
/// event_driven = true: requests become staged in-flight state machines
/// (arrival → local lookup → discovery → fetch → placement → completion)
/// whose transitions are scheduled on the discrete-event queue at the
/// LatencyModel's stage delays, so requests genuinely overlap in simulated
/// time. Latency is then MEASURED (completion − arrival) instead of charged,
/// ICP losses manifest as discovery timeouts, and the timeout/retry and
/// coalescing knobs below take effect.
struct PipelineConfig {
  bool event_driven = false;

  /// How long a requester waits for ICP replies before giving up on the
  /// peers that stayed silent (lost queries/replies, peer outages). Must
  /// exceed LatencyModel::icp_rtt.
  Duration icp_timeout = msec(2000);

  /// Bounded re-probing of unanswered peers after a discovery timeout:
  /// 0 = give up immediately (classic ICP), k = up to k extra rounds.
  std::uint32_t icp_retries = 0;

  /// Timeout multiplier per retry round (round n waits
  /// icp_timeout * retry_backoff^n). Must be >= 1.
  double retry_backoff = 2.0;

  /// Collapsed forwarding: while a proxy has a fetch in flight for a
  /// document, later local misses for the same document at the same proxy
  /// join the in-flight request instead of probing/fetching again.
  bool coalesce = false;
};

/// Pipeline-only counters. `enabled` is false (and everything zero) unless
/// the run used the event-driven driver, which keeps legacy result JSON
/// byte-identical.
struct PipelineStats {
  bool enabled = false;
  std::uint64_t started = 0;          // requests entering the pipeline
  std::uint64_t completed = 0;        // requests that reached completion
  std::uint64_t coalesced_joins = 0;  // requests that joined an in-flight fetch
  std::uint64_t icp_timeouts = 0;     // discovery windows that expired
  std::uint64_t icp_retries = 0;      // extra probe rounds issued
  std::uint64_t icp_recoveries = 0;   // positive replies won by a retry round
  std::uint64_t max_in_flight = 0;    // peak concurrently open requests
};

}  // namespace eacache
