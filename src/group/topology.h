// Cache-group cooperation topologies (paper section 2 / related work):
//
//  * Distributed: a flat set of peer caches; every cache is client-facing
//    and every other cache is its sibling. This is the architecture the
//    paper's experiments use.
//  * Hierarchical: client-facing leaf caches beneath parent caches. A local
//    miss ICP-queries the siblings AND the parent; if everyone misses, the
//    HTTP request is forwarded up the parent chain, and the top of the
//    chain fetches from the origin (paper section 3.3's hierarchical
//    variant of the EA algorithm).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"

namespace eacache {

enum class TopologyKind { kDistributed, kHierarchical };

class Topology {
 public:
  /// Flat peer group of n caches (n >= 1).
  [[nodiscard]] static Topology distributed(std::size_t n);

  /// Two-level tree: `leaves` client-facing caches under one root
  /// (total caches = leaves + 1; the root is the last id).
  [[nodiscard]] static Topology two_level(std::size_t leaves);

  /// General tree from an explicit parent table (nullopt = no parent).
  /// Client-facing caches are those that are not any cache's parent.
  /// Throws std::invalid_argument on cycles or out-of-range parents.
  [[nodiscard]] static Topology from_parents(TopologyKind kind,
                                             std::vector<std::optional<ProxyId>> parents);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::size_t num_proxies() const { return parents_.size(); }
  [[nodiscard]] std::optional<ProxyId> parent_of(ProxyId p) const { return parents_.at(p); }

  /// Caches that accept client requests (leaves; in distributed mode, all).
  [[nodiscard]] const std::vector<ProxyId>& client_facing() const { return client_facing_; }

  /// Peers with the same parent (distributed: all other caches).
  /// Excludes `p` itself.
  [[nodiscard]] std::vector<ProxyId> siblings_of(ProxyId p) const;

 private:
  Topology(TopologyKind kind, std::vector<std::optional<ProxyId>> parents);

  TopologyKind kind_;
  std::vector<std::optional<ProxyId>> parents_;
  std::vector<ProxyId> client_facing_;
};

}  // namespace eacache
