// CacheGroup: the cooperative cache as a whole — proxies, topology,
// transport accounting and the request orchestration of paper section 3.3.
//
// Request flow for one client request:
//   1. The user's home proxy (users are pinned to client-facing proxies by a
//      stable hash, as in a departmental deployment) tries a local hit.
//   2. On local miss: ICP query to every sibling (and the parent, in the
//      hierarchical architecture); each probe costs one query + one reply.
//   3. Any positive reply -> HTTP fetch from the chosen responder: a REMOTE
//      HIT. Placement decisions fire on both ends (requester keep-a-copy,
//      responder promote-or-not).
//   4. All negative, distributed architecture -> fetch from the origin and
//      (conventionally) cache: a MISS.
//   5. All negative, hierarchical architecture -> HTTP request up the
//      parent chain; the top fetches from the origin; every cache on the
//      path applies the parent placement rule; still a MISS (the origin was
//      contacted).
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/outcome.h"
#include "common/random.h"
#include "common/types.h"
#include "digest/digest_directory.h"
#include "ea/contention.h"
#include "ea/placement.h"
#include "group/hash_ring.h"
#include "group/pipeline_config.h"
#include "group/topology.h"
#include "metrics/metrics.h"
#include "net/latency_model.h"
#include "net/transport.h"
#include "obs/metric_registry.h"
#include "obs/obs_config.h"
#include "obs/trace_log.h"
#include "origin/origin_server.h"
#include "prefetch/markov_predictor.h"
#include "proxy/proxy_cache.h"
#include "storage/replacement_policy.h"
#include "trace/trace.h"

namespace eacache {

/// How a cache locates documents held by its peers.
///  * kIcp    — per-miss query/reply to every sibling (exact, chatty): the
///              protocol the paper's experiments use.
///  * kDigest — Summary-Cache style (paper ref. [6]): periodic Bloom-filter
///              snapshots; no per-miss queries, but snapshots go stale
///              (wasted probes / missed remote hits).
enum class DiscoveryMode { kIcp, kDigest };

/// How requests move between caches.
///  * kCooperative   — the paper's model: try locally, discover peer copies
///                     (ICP or digests), fetch remotely or from the origin;
///                     the PLACEMENT policy decides who keeps copies.
///  * kHashPartition — the consistent-hashing baseline (paper refs. [8] and
///                     [16]): every document has exactly one home cache on
///                     a hash ring; requests forward there; no replication
///                     at all. Placement must be kAdHoc (partitioning IS
///                     the placement decision) and the topology distributed.
enum class RoutingMode { kCooperative, kHashPartition };

/// TTL + If-Modified-Since coherence (off by default — the paper's own
/// experiments assume immutable documents).
///
/// When enabled, a cached copy is FRESH for `fresh_ttl` after its last
/// validation. Stale copies are not advertised over ICP, not served to
/// peers, and a stale local copy triggers an If-Modified-Since round trip
/// to the origin: unchanged -> 304, freshness renewed, served as a hit
/// (plus `validation_rtt`); changed -> the reply carries the new body, the
/// old copy is replaced, and the request counts as a miss.
/// How long a validated copy stays fresh.
///  * kFixedTtl  — a flat lifetime (`fresh_ttl`).
///  * kLmFactor  — Squid's adaptive rule: lifetime proportional to the
///                 document's age at validation time
///                 (lm_factor * (validated - last_modified)), clamped to
///                 [min_ttl, max_ttl]. Stable documents earn long
///                 lifetimes; freshly-changed ones are rechecked soon.
enum class FreshnessRule { kFixedTtl, kLmFactor };

struct CoherenceConfig {
  bool enabled = false;
  FreshnessRule rule = FreshnessRule::kFixedTtl;
  Duration fresh_ttl = hours(1);      // kFixedTtl
  double lm_factor = 0.1;             // kLmFactor
  Duration min_ttl = minutes(1);      // kLmFactor clamp
  Duration max_ttl = hours(24 * 7);   // kLmFactor clamp
  Duration validation_rtt = msec(300);
};

/// "Eager mode" placement (paper §5): per-proxy first-order Markov
/// prediction over each user's request stream; after serving document A,
/// the proxy speculatively fetches A's most likely successor from the
/// origin when the predictor is confident enough. Off by default — the
/// paper's schemes are lazy-mode.
struct PrefetchConfig {
  bool enabled = false;
  double min_confidence = 0.25;       // successor mass needed to act
  std::uint64_t min_observations = 3;  // evidence needed to act
};

/// Prefetch outcome counters (all zero when prefetching is off).
struct PrefetchStats {
  std::uint64_t issued = 0;        // speculative fetches performed
  std::uint64_t useful = 0;        // prefetched copies hit before eviction
  std::uint64_t still_pending = 0; // unresolved at end of run (set by sim)
  Bytes bytes_prefetched = 0;      // extra origin traffic paid

  /// issued == useful + wasted + still_pending. The invariant is asserted
  /// in debug builds; release builds clamp to zero instead of letting the
  /// unsigned subtraction wrap to a huge "wasted" count.
  [[nodiscard]] std::uint64_t wasted() const {
    assert(issued >= useful + still_pending);
    return issued >= useful + still_pending ? issued - useful - still_pending : 0;
  }
};

/// A transient peer outage (fault injection): while active, ICP probes to
/// `proxy` go unanswered — the serialized driver books them as losses, the
/// event-driven pipeline sees them as discovery timeouts. The window is
/// half-open: [start, end).
struct PeerOutage {
  ProxyId proxy = 0;
  TimePoint start{};
  TimePoint end{};
};

/// Coherence outcome counters (all zero when coherence is off).
struct CoherenceStats {
  std::uint64_t validations = 0;    // If-Modified-Since round trips
  std::uint64_t validated_304 = 0;  // renewals (document unchanged)
  std::uint64_t validated_200 = 0;  // replacements (document changed)
  std::uint64_t stale_served = 0;   // TTL-fresh copies that were actually
                                    // out of date when served (oracle check)
};

struct GroupConfig {
  /// Number of CLIENT-FACING caches (the paper's N). The hierarchical
  /// topology adds one root cache above them.
  std::size_t num_proxies = 4;

  /// The group's total disk budget, split equally among all caches
  /// (including a hierarchical root), exactly as in the paper's setup
  /// ("disk space available at each cache is X/N bytes").
  Bytes aggregate_capacity = 10 * kMiB;

  /// Optional non-uniform split of the aggregate budget (the paper assumes
  /// equal shares; ABL-HETERO relaxes that). When non-empty the size must
  /// equal the TOTAL cache count (num_proxies, plus one for a hierarchical
  /// root); cache i receives aggregate * weights[i] / sum(weights).
  std::vector<double> capacity_weights;

  /// Explicit parent table for arbitrary hierarchies (e.g. three levels).
  /// When non-empty it defines the WHOLE group (num_proxies is ignored;
  /// topology must be kHierarchical): entry i is cache i's parent, nullopt
  /// for roots. Client-facing caches are those nobody lists as a parent.
  std::vector<std::optional<ProxyId>> custom_parents;

  PolicyKind replacement = PolicyKind::kLru;
  PlacementKind placement = PlacementKind::kEa;
  double ea_hysteresis = 2.0;  // replication threshold (kEaHysteresis only)

  /// Test seam: substitute a hand-built placement policy for the one
  /// `placement` would construct. The override's kind() must match
  /// `placement` (validated) so every consumer that dispatches on the enum
  /// still agrees with the object actually deciding. Shared because
  /// GroupConfig is copied freely into sweep jobs; policies are stateless.
  std::shared_ptr<const PlacementPolicy> placement_override;
  WindowConfig window{};
  TopologyKind topology = TopologyKind::kDistributed;
  LatencyModel latency{};
  WireCosts wire{};
  DiscoveryMode discovery = DiscoveryMode::kIcp;
  DigestConfig digest{};
  RoutingMode routing = RoutingMode::kCooperative;
  std::size_t hash_virtual_nodes = 64;  // ring smoothing (kHashPartition)
  CoherenceConfig coherence{};
  OriginConfig origin{};
  PrefetchConfig prefetch{};

  /// ICP runs over UDP: queries/replies can vanish. A lost exchange makes
  /// the requester treat the peer as a miss — the classic cause of
  /// duplicate origin fetches in ICP deployments. Loss is applied per
  /// query/reply exchange, deterministically from `network_seed`.
  double icp_loss_probability = 0.0;
  std::uint64_t network_seed = 99;

  /// Request-pipeline driver selection + timeout/retry/coalescing knobs.
  PipelineConfig pipeline{};

  /// Observability: metric registry + request-lifecycle tracing. Pure
  /// accounting — simulation outcomes are identical for every setting.
  ObsConfig obs{};

  /// Every violated configuration rule, in a stable order; empty means the
  /// config is usable. Aggregates ALL problems instead of failing on the
  /// first one, so a misconfigured sweep reports its whole diagnosis at
  /// once. Group-level rules only — `RunSpec::validate()` (core/run_spec.h)
  /// is the public entry point; it calls this and layers the per-run and
  /// execution-policy rules on top.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every violation ("; "-joined)
  /// when validate() is non-empty. Called by the CacheGroup constructor and
  /// by run_simulation.
  void validate_or_throw() const;

  /// validate() plus the rules a LIVE (daemon-mode) group adds: features
  /// whose semantics only exist inside the discrete-event simulator —
  /// coherence's origin oracle, the seeded ICP-loss draw, digest refresh
  /// scheduling, the hierarchical parent chain, prefetch learning, hash
  /// partitioning, the event-driven pipeline driver and the span ring —
  /// are all rejected here with aggregated messages, same contract as
  /// validate(). Internal: reached through
  /// `RunSpec::validate(RunTarget::kDaemon)`, which the daemon runner
  /// (daemon/daemon.h) folds into its own option checks.
  [[nodiscard]] std::vector<std::string> validate_for_daemon() const;

  /// Total cache count this config builds: custom_parents when given,
  /// otherwise num_proxies plus a hierarchical root.
  [[nodiscard]] std::size_t total_cache_count() const;
};

// ---- Group construction helpers ------------------------------------------
//
// Shared by CacheGroup and the sharded engine (sim/shard_engine.h), which
// builds the same proxies without a group orchestrator. Splitting them out
// keeps the two construction paths agreeing by definition.

/// The topology a config builds: custom_parents when given, otherwise the
/// `topology` kind over num_proxies.
[[nodiscard]] Topology topology_from(const GroupConfig& config);

/// Per-cache byte budgets: equal split (the paper's setup) unless explicit
/// weights are given. Assumes a validated config.
[[nodiscard]] std::vector<Bytes> cache_budgets(const GroupConfig& config,
                                               std::size_t total_caches);

/// The client-facing proxy a user's requests arrive at (stable hash onto
/// the client-facing set).
[[nodiscard]] ProxyId home_proxy_in(const Topology& topology, UserId user);

/// Deterministic best-first candidate order: ring distance from the
/// requester over a group of `num_caches` caches.
void sort_by_ring_distance(std::vector<ProxyId>& peers, ProxyId requester,
                           std::size_t num_caches);

/// Observer for every placement decision the group makes (requester
/// keep-a-copy and parent keep-a-copy alike). `requester_age`/`responder_age`
/// are the expiration ages the two sides actually exchanged on the wire —
/// the hook never re-queries an estimator. Used by the invariant checker
/// (src/validate/) to audit decisions against the paper's §3.3 rules;
/// callbacks may read the group but must not mutate it.
class PlacementAuditor {
 public:
  virtual ~PlacementAuditor() = default;
  virtual void on_placement(ProxyId proxy, DocumentId document, TimePoint at, Bytes size,
                            std::optional<ExpAge> requester_age,
                            std::optional<ExpAge> responder_age, bool accepted) = 0;
};

class CacheGroup {
 public:
  explicit CacheGroup(const GroupConfig& config);

  CacheGroup(const CacheGroup&) = delete;
  CacheGroup& operator=(const CacheGroup&) = delete;

  /// Serve one trace request at simulated time `request.at`, start to
  /// finish, with the legacy synchronous driver. The event-driven
  /// alternative is sim/request_pipeline.h, which stages the SAME
  /// resolution helpers over the event queue.
  RequestOutcome serve(const Request& request);

  /// Failure injection: simulate a proxy crash/restart that loses its whole
  /// cache (explicit removals — not contention signals). The proxy rejoins
  /// cold immediately; digests catch up at the next refresh.
  void flush_proxy(ProxyId proxy, TimePoint now);

  /// Fault injection: transient peer outages. While an outage is active,
  /// ICP probes to the affected proxy go unanswered.
  void set_outages(std::vector<PeerOutage> outages) { outages_ = std::move(outages); }
  [[nodiscard]] bool peer_down(ProxyId proxy, TimePoint at) const;

  [[nodiscard]] const GroupConfig& config() const { return config_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const GroupMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const TransportStats& transport_stats() const { return transport_.stats(); }
  [[nodiscard]] const CoherenceStats& coherence_stats() const { return coherence_stats_; }
  /// still_pending is zero here; the simulator fills it at end of run from
  /// pending_prefetches().
  [[nodiscard]] const PrefetchStats& prefetch_stats() const { return prefetch_stats_; }
  /// The group-wide metric registry ("group.*", "proxy.<id>.*", "link.*").
  /// Empty when GroupConfig::obs.registry is false.
  [[nodiscard]] const MetricRegistry& registry() const { return registry_; }
  /// The request-lifecycle span ring. Disabled (capacity 0) by default.
  [[nodiscard]] const TraceLog& trace_log() const { return trace_log_; }
  /// Stamp end-of-run gauges (per-proxy occupancy, group replication) into
  /// the registry; no-op when the registry is off.
  void export_final_gauges();
  [[nodiscard]] std::size_t pending_prefetches() const;
  [[nodiscard]] std::size_t num_proxies() const { return proxies_.size(); }
  [[nodiscard]] const ProxyCache& proxy(ProxyId id) const { return *proxies_.at(id); }

  /// The proxy a user's requests arrive at (stable hash onto the
  /// client-facing set).
  [[nodiscard]] ProxyId home_proxy(UserId user) const;

  /// Table 1's metric: the mean of the per-cache average expiration ages
  /// (each cache's mean victim DocExpAge over the whole run). Caches that
  /// never evicted are excluded from the mean; if NO cache evicted the
  /// result is ExpAge::infinite().
  [[nodiscard]] ExpAge average_cache_expiration_age() const;

  /// Group-wide occupancy diagnostics for the replication analysis.
  [[nodiscard]] std::size_t total_resident_copies() const;
  [[nodiscard]] std::size_t unique_resident_documents() const;
  /// copies / unique (1.0 = no replication). 0 when the group is empty.
  [[nodiscard]] double replication_factor() const;

  /// Attach (or detach, with nullptr) the single placement auditor. The
  /// auditor must outlive the group or detach itself first.
  void attach_auditor(PlacementAuditor* auditor) { auditor_ = auditor; }
  /// Forward an eviction observer onto one proxy's store (validation hook;
  /// see CacheStore::add_eviction_observer for the observer contract).
  void add_eviction_observer(ProxyId proxy, EvictionObserver* observer) {
    proxies_.at(proxy)->add_eviction_observer(observer);
  }

 private:
  /// The event-driven driver schedules the private stage helpers below on
  /// the event queue; it lives in its own translation unit to keep this one
  /// free of event-engine concerns.
  friend class RequestPipeline;

  /// What resolving one request produced. `latency` is the LEGACY charge —
  /// the paper's per-outcome aggregate plus any probe penalties — which the
  /// synchronous driver records directly and the event-driven driver uses
  /// to place the completion event (measuring latency instead).
  struct Resolution {
    RequestOutcome outcome = RequestOutcome::kMiss;
    Bytes bytes = 0;
    Duration latency = Duration::zero();
  };

  /// Request preamble shared by both drivers: per-proxy accounting, the
  /// request id, registry counters and the arrival span. Returns the id.
  std::uint64_t begin_request(ProxyCache& requester, const Request& request);
  /// Completion span shared by both drivers (no-op when tracing is off).
  void record_complete_span(ProxyId proxy, DocumentId document, std::uint64_t request_id,
                            TimePoint at, RequestOutcome outcome);

  /// Full cooperative resolution (local lookup → discovery → fetch), used
  /// by the synchronous driver. Mutates caches and records spans/transport
  /// but NOT metrics — the driver does that.
  Resolution resolve_cooperative(ProxyCache& requester, const Request& request, TimePoint now);
  Resolution resolve_hash_partition(ProxyCache& requester, const Request& request,
                                    TimePoint now);

  /// The document a request resolves to, stamped with the origin version
  /// current at `now` when coherence is on.
  [[nodiscard]] Document document_from(const Request& request, TimePoint now) const;
  [[nodiscard]] bool coherence_on() const { return config_.coherence.enabled; }
  /// Freshness lifetime of an entry under the configured rule.
  [[nodiscard]] Duration freshness_lifetime(const CacheEntry& entry) const;
  /// Is the proxy's copy (if any) within its freshness lifetime?
  [[nodiscard]] bool copy_is_fresh(const ProxyCache& proxy, DocumentId document,
                                   TimePoint now) const;

  /// Local lookup with the full coherence state machine.
  enum class LocalState { kMiss, kFreshHit, kValidatedHit, kChanged };
  struct LocalLookup {
    LocalState state = LocalState::kMiss;
    Bytes size = 0;
  };
  LocalLookup local_lookup(ProxyCache& proxy, const Request& request, TimePoint now);

  /// One ICP query/reply exchange with `target`: transport + registry +
  /// span accounting, the outage check, the (seeded) UDP-loss draw and the
  /// freshness-aware presence answer. Both drivers issue probes through
  /// here, in the same target order, so the loss RNG consumes draws
  /// identically under either driver.
  enum class ProbeResult { kLost, kMiss, kHit };
  ProbeResult probe_peer(ProxyCache& requester, ProxyId target, const Request& request,
                         TimePoint now);
  /// Peers the probe fan-out targets: siblings plus the parent, if any.
  [[nodiscard]] std::vector<ProxyId> probe_targets(ProxyId requester) const;
  /// Digest-mode candidates (free, approximate), unsorted.
  [[nodiscard]] std::vector<ProxyId> digest_candidates(ProxyId requester,
                                                       DocumentId document) const;
  /// Peer ids that may hold the document, best-first. ICP mode returns
  /// exact answers (and records the query/reply traffic); digest mode
  /// consults peers' published snapshots (free, but approximate).
  std::vector<ProxyId> discover_candidates(ProxyCache& requester, const Request& request);

  /// Fetch from the first candidate that actually has the document, falling
  /// through to the group-miss resolution. Mutations + spans, no metrics.
  Resolution try_candidates(ProxyCache& requester, const Request& request,
                            const std::vector<ProxyId>& candidates, TimePoint now);
  Resolution resolve_group_miss(ProxyCache& requester, const Request& request,
                                Duration probe_penalty, TimePoint now);
  /// Forward up the parent chain; returns the response the child receives.
  HttpResponse fetch_via_parent(ProxyCache& child, ProxyId parent_id, const Request& request,
                                TimePoint now);
  /// Digest mode: republish any snapshot older than the refresh period.
  void refresh_digests(TimePoint now);
  /// Deterministic best-first order: ring distance from the requester.
  void sort_by_ring_distance(std::vector<ProxyId>& peers, ProxyId requester) const;

  /// Origin-fetch bookkeeping shared by every call site: transport bytes,
  /// the group counter and (when tracing) a kOriginFetch span.
  void note_origin_fetch(ProxyId requester, const Document& document, TimePoint at,
                         bool speculative);
  /// Placement-decision span (requester or parent rule). EA values are the
  /// ones ALREADY exchanged on the wire — tracing never re-queries an
  /// estimator, so counters match between traced and untraced runs.
  void trace_placement(ProxyId proxy, DocumentId document, TimePoint at, Bytes size,
                       std::optional<ExpAge> requester_age,
                       std::optional<ExpAge> responder_age, bool accepted);
  [[nodiscard]] static std::int64_t sim_ms(TimePoint at) { return (at - kSimEpoch).count(); }
  [[nodiscard]] static double ea_ms(std::optional<ExpAge> age) {
    return age.has_value() ? age->millis() : -1.0;
  }

  GroupConfig config_;
  Topology topology_;
  std::shared_ptr<const PlacementPolicy> placement_;
  PlacementAuditor* auditor_ = nullptr;
  MetricRegistry registry_;  // before proxies_: they hold handles into it
  TraceLog trace_log_;
  std::vector<std::unique_ptr<ProxyCache>> proxies_;
  Transport transport_;
  GroupMetrics metrics_;

  // Request-lifecycle bookkeeping for tracing.
  std::uint64_t request_seq_ = 0;
  std::uint64_t current_request_ = 0;

  // Group-wide counters (null handles when the registry is off).
  MetricRegistry::Counter obs_requests_;
  MetricRegistry::Counter obs_icp_queries_;
  MetricRegistry::Counter obs_icp_replies_;
  MetricRegistry::Counter obs_icp_losses_;
  MetricRegistry::Counter obs_sibling_fetches_;
  MetricRegistry::Counter obs_parent_fetches_;
  MetricRegistry::Counter obs_origin_fetches_;
  MetricRegistry::HistogramHandle obs_request_bytes_;

  // Digest discovery state. One shared directory stands in for the
  // identical per-proxy copies a real deployment keeps; the broadcast COST
  // is still accounted per receiving peer.
  PeerDigestDirectory digest_directory_;
  std::vector<TimePoint> last_digest_publish_;
  std::vector<bool> digest_published_once_;

  // Hash-partition routing state (kHashPartition only).
  std::optional<HashRing> hash_ring_;

  // Coherence state (CoherenceConfig::enabled only).
  std::optional<OriginServer> origin_;
  CoherenceStats coherence_stats_;

  // Simulated UDP loss for ICP (icp_loss_probability > 0 only).
  Rng network_rng_{0};

  // Fault injection: transient peer outages (see set_outages()).
  std::vector<PeerOutage> outages_;

  // Prefetch state (PrefetchConfig::enabled only).
  void learn_and_prefetch(ProxyCache& requester, const Request& request, TimePoint now);
  std::vector<MarkovPredictor> predictors_;              // one per proxy
  std::unordered_map<UserId, DocumentId> last_document_; // per-user stream
  std::unordered_map<DocumentId, Bytes> known_sizes_;    // for speculation
  std::vector<std::unordered_set<DocumentId>> pending_prefetch_;
  PrefetchStats prefetch_stats_;
};

}  // namespace eacache
