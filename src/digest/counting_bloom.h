// Counting Bloom filter — the Summary-Cache construction (paper ref. [6]).
//
// A cache's directory churns constantly, and a plain Bloom filter cannot
// forget. Fan et al.'s fix: keep 4-bit COUNTERS locally (increment on
// insert, decrement on remove, saturate at 15), and publish a plain bitmap
// snapshot (counter > 0) to peers. This class is the local counting side;
// snapshot() produces the BloomFilter that goes on the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "digest/bloom_filter.h"

namespace eacache {

class CountingBloomFilter {
 public:
  /// Same geometry rules as BloomFilter. Counters are 4-bit, stored packed.
  CountingBloomFilter(std::size_t cells, std::size_t hashes);

  [[nodiscard]] static CountingBloomFilter with_false_positive_rate(std::size_t expected_items,
                                                                    double rate);

  void insert(DocumentId id);
  /// Remove one previous insert of `id`. Decrementing a zero counter means
  /// the caller double-removed: throws std::logic_error (a saturated
  /// counter, however, legitimately stays at 15 forever — see Fan et al.
  /// §4.3; such cells are never decremented below their floor and we track
  /// saturation to keep remove() safe).
  void remove(DocumentId id);
  [[nodiscard]] bool maybe_contains(DocumentId id) const;

  /// The plain bitmap a proxy publishes to its peers.
  [[nodiscard]] BloomFilter snapshot() const;

  [[nodiscard]] std::size_t cell_count() const { return cells_; }
  [[nodiscard]] std::size_t hash_count() const { return hashes_; }
  [[nodiscard]] std::uint64_t saturations() const { return saturations_; }

  /// Test hook: the raw counter value of a cell.
  [[nodiscard]] std::uint8_t counter(std::size_t cell) const;

 private:
  void bump(std::size_t cell, int delta);

  std::size_t cells_;
  std::size_t hashes_;
  std::vector<std::uint8_t> nibbles_;  // two 4-bit counters per byte
  std::uint64_t saturations_ = 0;
};

}  // namespace eacache
