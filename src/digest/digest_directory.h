// Summary-Cache digest machinery for one proxy.
//
// Each proxy maintains:
//  * a CountingBloomFilter mirroring its own directory (kept exact by
//    observing admissions and evictions), and
//  * the last published snapshot of every peer, against which "who might
//    have document D?" is answered with zero network traffic.
//
// Snapshots are republished every `refresh_period` of simulated time
// (Summary Cache's delayed-propagation design): between refreshes a peer
// snapshot can be stale in both directions — false positives (the peer
// evicted the document) cost a wasted fetch, false negatives (the peer
// admitted it after publishing) cost a duplicate origin fetch. The
// discovery ablation bench measures exactly this trade against ICP.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "digest/counting_bloom.h"
#include "storage/eviction.h"

namespace eacache {

struct DigestConfig {
  std::size_t expected_items = 4096;  // sizing hint for the filters
  double false_positive_rate = 0.01;
  Duration refresh_period = minutes(5);
};

/// The local (counting) side. Subscribes to a CacheStore's evictions; the
/// owner must also call note_admission() whenever a document is admitted
/// (stores have no admission observer — admission is always initiated by
/// the proxy itself).
class LocalDigest final : public EvictionObserver {
 public:
  explicit LocalDigest(const DigestConfig& config);

  void note_admission(DocumentId id);
  void on_eviction(const EvictionRecord& record) override;

  [[nodiscard]] BloomFilter publish() const { return filter_.snapshot(); }
  [[nodiscard]] const CountingBloomFilter& filter() const { return filter_; }

 private:
  CountingBloomFilter filter_;
};

/// The remote side: peers' last-published snapshots.
class PeerDigestDirectory {
 public:
  explicit PeerDigestDirectory(const DigestConfig& config) : config_(config) {}

  /// Install/replace a peer's snapshot.
  void update(ProxyId peer, BloomFilter snapshot, TimePoint published_at);

  /// Peers (among those with snapshots) that may hold `id`, in ascending
  /// peer id order. May contain false positives; may miss recent admitters.
  [[nodiscard]] std::vector<ProxyId> candidates(DocumentId id) const;

  [[nodiscard]] bool has_snapshot(ProxyId peer) const { return snapshots_.count(peer) != 0; }
  [[nodiscard]] std::optional<TimePoint> published_at(ProxyId peer) const;
  [[nodiscard]] const DigestConfig& config() const { return config_; }

 private:
  struct Entry {
    BloomFilter snapshot;
    TimePoint published_at;
  };

  DigestConfig config_;
  std::unordered_map<ProxyId, Entry> snapshots_;
};

}  // namespace eacache
