#include "digest/digest_directory.h"

#include <algorithm>

namespace eacache {

LocalDigest::LocalDigest(const DigestConfig& config)
    : filter_(CountingBloomFilter::with_false_positive_rate(config.expected_items,
                                                            config.false_positive_rate)) {}

void LocalDigest::note_admission(DocumentId id) { filter_.insert(id); }

void LocalDigest::on_eviction(const EvictionRecord& record) { filter_.remove(record.id); }

void PeerDigestDirectory::update(ProxyId peer, BloomFilter snapshot, TimePoint published_at) {
  snapshots_.insert_or_assign(peer, Entry{std::move(snapshot), published_at});
}

std::vector<ProxyId> PeerDigestDirectory::candidates(DocumentId id) const {
  std::vector<ProxyId> result;
  // eacheck:allow(determinism): hash order is normalized by the sort below
  for (const auto& [peer, entry] : snapshots_) {
    if (entry.snapshot.maybe_contains(id)) result.push_back(peer);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::optional<TimePoint> PeerDigestDirectory::published_at(ProxyId peer) const {
  const auto it = snapshots_.find(peer);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second.published_at;
}

}  // namespace eacache
