// Plain Bloom filter over DocumentIds.
//
// Used as the published "cache digest" snapshot in the Summary-Cache-style
// discovery protocol (Fan, Cao, Almeida & Broder, SIGCOMM '98 — the paper's
// reference [6]): each proxy periodically broadcasts a Bloom filter of its
// directory so peers can answer "who might have this document?" without a
// per-miss ICP round trip.
//
// Hashing: double hashing h_i(x) = h1(x) + i * h2(x) (Kirsch & Mitzenmacher
// 2006), both derived from one mix64 pass — deterministic across platforms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace eacache {

class BloomFilter {
 public:
  /// Filter with `bits` bits (rounded up to a word) and `hashes` probe
  /// functions. Requires bits >= 8 and 1 <= hashes <= 16.
  BloomFilter(std::size_t bits, std::size_t hashes);

  /// Parameters minimising the false-positive rate for an expected
  /// `expected_items` inserts at the target rate:
  ///   m = -n ln p / (ln 2)^2,  k = (m/n) ln 2.
  [[nodiscard]] static BloomFilter with_false_positive_rate(std::size_t expected_items,
                                                            double rate);

  void insert(DocumentId id);
  [[nodiscard]] bool maybe_contains(DocumentId id) const;
  void clear();

  [[nodiscard]] std::size_t bit_count() const { return bits_; }
  [[nodiscard]] std::size_t hash_count() const { return hashes_; }
  /// Fraction of bits set — a filter health indicator (>0.5 means the
  /// false-positive rate has degraded past the design point).
  [[nodiscard]] double fill_ratio() const;
  /// Wire size of a published snapshot.
  [[nodiscard]] Bytes wire_size() const { return (bits_ + 7) / 8; }

  /// Theoretical false-positive rate at the current fill.
  [[nodiscard]] double estimated_false_positive_rate() const;

 private:
  friend class CountingBloomFilter;  // snapshot construction

  std::size_t bits_;
  std::size_t hashes_;
  std::vector<std::uint64_t> words_;
  std::size_t set_bits_ = 0;
};

}  // namespace eacache
