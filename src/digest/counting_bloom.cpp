#include "digest/counting_bloom.h"

#include <stdexcept>

#include "common/hash.h"

namespace eacache {

namespace {
struct ProbeBases {
  std::uint64_t h1;
  std::uint64_t h2;
};

ProbeBases probe_bases(DocumentId id) {
  const std::uint64_t a = mix64(id);
  const std::uint64_t b = mix64(a ^ 0x9e3779b97f4a7c15ULL) | 1ULL;
  return {a, b};
}

constexpr std::uint8_t kMaxCounter = 15;
}  // namespace

CountingBloomFilter::CountingBloomFilter(std::size_t cells, std::size_t hashes)
    : cells_(cells), hashes_(hashes), nibbles_((cells + 1) / 2, 0) {
  if (cells < 8) throw std::invalid_argument("CountingBloomFilter: need at least 8 cells");
  if (hashes < 1 || hashes > 16) {
    throw std::invalid_argument("CountingBloomFilter: 1..16 hashes");
  }
}

CountingBloomFilter CountingBloomFilter::with_false_positive_rate(std::size_t expected_items,
                                                                  double rate) {
  const BloomFilter shape = BloomFilter::with_false_positive_rate(expected_items, rate);
  return CountingBloomFilter(shape.bit_count(), shape.hash_count());
}

std::uint8_t CountingBloomFilter::counter(std::size_t cell) const {
  const std::uint8_t byte = nibbles_.at(cell / 2);
  return (cell % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
}

void CountingBloomFilter::bump(std::size_t cell, int delta) {
  std::uint8_t& byte = nibbles_[cell / 2];
  const bool high = cell % 2 != 0;
  std::uint8_t value = high ? (byte >> 4) : (byte & 0x0f);

  if (delta > 0) {
    if (value == kMaxCounter) {
      ++saturations_;  // stays pinned at 15 forever (Fan et al. §4.3)
    } else {
      ++value;
    }
  } else {
    if (value == kMaxCounter) {
      // Saturated: true count unknown; the safe choice is to never
      // decrement, accepting a permanent false positive on this cell.
    } else if (value == 0) {
      throw std::logic_error("CountingBloomFilter: decrement of zero counter");
    } else {
      --value;
    }
  }
  byte = high ? static_cast<std::uint8_t>((byte & 0x0f) | (value << 4))
              : static_cast<std::uint8_t>((byte & 0xf0) | value);
}

void CountingBloomFilter::insert(DocumentId id) {
  const ProbeBases bases = probe_bases(id);
  for (std::size_t i = 0; i < hashes_; ++i) {
    bump((bases.h1 + i * bases.h2) % cells_, +1);
  }
}

void CountingBloomFilter::remove(DocumentId id) {
  const ProbeBases bases = probe_bases(id);
  for (std::size_t i = 0; i < hashes_; ++i) {
    bump((bases.h1 + i * bases.h2) % cells_, -1);
  }
}

bool CountingBloomFilter::maybe_contains(DocumentId id) const {
  const ProbeBases bases = probe_bases(id);
  for (std::size_t i = 0; i < hashes_; ++i) {
    if (counter((bases.h1 + i * bases.h2) % cells_) == 0) return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::snapshot() const {
  BloomFilter snapshot(cells_, hashes_);
  for (std::size_t cell = 0; cell < cells_; ++cell) {
    if (counter(cell) > 0) {
      const std::size_t word = cell / 64;
      const std::uint64_t mask = 1ULL << (cell % 64);
      if ((snapshot.words_[word] & mask) == 0) {
        snapshot.words_[word] |= mask;
        ++snapshot.set_bits_;
      }
    }
  }
  return snapshot;
}

}  // namespace eacache
