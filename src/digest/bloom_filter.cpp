#include "digest/bloom_filter.h"

#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace eacache {

namespace {
// Derive the two double-hashing bases from one strong mix. h2 is forced odd
// so successive probes cycle through distinct positions for power-of-two-ish
// bit counts too.
struct ProbeBases {
  std::uint64_t h1;
  std::uint64_t h2;
};

ProbeBases probe_bases(DocumentId id) {
  const std::uint64_t a = mix64(id);
  const std::uint64_t b = mix64(a ^ 0x9e3779b97f4a7c15ULL) | 1ULL;
  return {a, b};
}
}  // namespace

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes)
    : bits_(bits), hashes_(hashes), words_((bits + 63) / 64, 0) {
  if (bits < 8) throw std::invalid_argument("BloomFilter: need at least 8 bits");
  if (hashes < 1 || hashes > 16) throw std::invalid_argument("BloomFilter: 1..16 hashes");
}

BloomFilter BloomFilter::with_false_positive_rate(std::size_t expected_items, double rate) {
  if (expected_items == 0) throw std::invalid_argument("BloomFilter: need expected items");
  if (!(rate > 0.0 && rate < 1.0)) throw std::invalid_argument("BloomFilter: rate in (0,1)");
  const double n = static_cast<double>(expected_items);
  const double ln2 = std::log(2.0);
  const double m = -n * std::log(rate) / (ln2 * ln2);
  const double k = m / n * ln2;
  const auto bits = static_cast<std::size_t>(std::ceil(m));
  auto hashes = static_cast<std::size_t>(std::lround(k));
  if (hashes < 1) hashes = 1;
  if (hashes > 16) hashes = 16;
  return BloomFilter(bits < 8 ? 8 : bits, hashes);
}

void BloomFilter::insert(DocumentId id) {
  const ProbeBases bases = probe_bases(id);
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (bases.h1 + i * bases.h2) % bits_;
    std::uint64_t& word = words_[bit / 64];
    const std::uint64_t mask = 1ULL << (bit % 64);
    if ((word & mask) == 0) {
      word |= mask;
      ++set_bits_;
    }
  }
}

bool BloomFilter::maybe_contains(DocumentId id) const {
  const ProbeBases bases = probe_bases(id);
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::size_t bit = (bases.h1 + i * bases.h2) % bits_;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  words_.assign(words_.size(), 0);
  set_bits_ = 0;
}

double BloomFilter::fill_ratio() const {
  return static_cast<double>(set_bits_) / static_cast<double>(bits_);
}

double BloomFilter::estimated_false_positive_rate() const {
  return std::pow(fill_ratio(), static_cast<double>(hashes_));
}

}  // namespace eacache
