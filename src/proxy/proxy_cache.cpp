#include "proxy/proxy_cache.h"

#include <stdexcept>
#include <string>

#include "ea/expiration_age.h"

namespace eacache {

ProxyCache::ProxyCache(ProxyId id, Bytes capacity,
                       std::unique_ptr<ReplacementPolicy> replacement, WindowConfig window,
                       const PlacementPolicy* placement, const DigestConfig* digest_config,
                       MetricRegistry* registry)
    : id_(id),
      store_(capacity, std::move(replacement)),
      contention_(age_form_for_policy(store_.policy().name()), window),
      placement_(placement) {
  if (placement_ == nullptr) throw std::invalid_argument("ProxyCache: null placement policy");
  store_.add_eviction_observer(&contention_);
  if (digest_config != nullptr) {
    digest_.emplace(*digest_config);
    store_.add_eviction_observer(&*digest_);
  }
  if (registry != nullptr && registry->enabled()) {
    const std::string prefix = "proxy." + std::to_string(id_) + ".";
    obs_icp_answered_ = registry->counter(prefix + "icp.answered");
    obs_icp_answered_hit_ = registry->counter(prefix + "icp.answered_hit");
    obs_local_hits_ = registry->counter(prefix + "local.hits");
    obs_fetches_served_ = registry->counter(prefix + "fetches.served");
    obs_fetches_failed_ = registry->counter(prefix + "fetches.not_found");
    obs_placement_accepted_ = registry->counter(prefix + "placement.accepted");
    obs_placement_rejected_ = registry->counter(prefix + "placement.rejected");
    obs_promotions_suppressed_ = registry->counter(prefix + "promotions.suppressed");
    obs_origin_admissions_ = registry->counter(prefix + "origin.admissions");
    store_.bind_counters(registry->counter(prefix + "evictions.capacity"),
                         registry->counter(prefix + "evictions.explicit"),
                         registry->counter(prefix + "silent_hits"));
    contention_.bind_counters(registry->counter(prefix + "ea.age_queries"),
                              registry->counter(prefix + "ea.cold_age_queries"));
  }
}

bool ProxyCache::admit_tracked(const Document& document, TimePoint now) {
  if (!store_.admit(document, now).has_value()) return false;
  if (digest_) digest_->note_admission(document.id);
  return true;
}

void ProxyCache::flush(TimePoint now) {
  for (const DocumentId id : store_.resident_ids()) store_.remove(id, now);
}

BloomFilter ProxyCache::publish_digest() const {
  if (!digest_) throw std::logic_error("ProxyCache: digests not enabled");
  return digest_->publish();
}

std::optional<Bytes> ProxyCache::serve_local(DocumentId document, TimePoint now) {
  const auto entry = store_.touch(document, now);
  if (!entry) return std::nullopt;
  ++stats_.local_hits;
  obs_local_hits_.inc();
  return entry->size;
}

HttpResponse ProxyCache::serve_remote(const HttpRequest& request, TimePoint now) {
  const HttpResponse response = serve_fetch(request, now);
  if (!response.found) {
    // Contract violation: the group only sends ICP-mode fetches after a
    // positive ICP answer, and the simulated world is single-threaded.
    throw std::logic_error("ProxyCache::serve_remote: document not resident");
  }
  return response;
}

HttpResponse ProxyCache::serve_fetch(const HttpRequest& request, TimePoint now) {
  HttpResponse response;
  response.from = id_;
  response.to = request.from;
  response.document = request.document;
  response.source = ResponseSource::kCache;

  if (!store_.contains(request.document)) {
    // Digest discovery probed us on a stale/collided snapshot.
    response.found = false;
    obs_fetches_failed_.inc();
    return response;
  }

  const ExpAge own_age = expiration_age(now);
  // Under the EA scheme the requester always piggybacks its age; under
  // ad-hoc there is nothing to compare, and the conventional behaviour is a
  // normal (promoting) hit.
  const ExpAge requester_age = request.requester_age.value_or(ExpAge::infinite());

  std::optional<CacheEntry> entry;
  if (placement_->responder_should_promote(own_age, requester_age)) {
    entry = store_.touch(request.document, now);
  } else {
    entry = store_.touch_without_promote(request.document, now);
    ++stats_.promotions_suppressed;
    obs_promotions_suppressed_.inc();
  }
  ++stats_.remote_fetches_served;
  obs_fetches_served_.inc();

  response.body_size = entry->size;
  response.version = entry->version;
  response.validated_at = entry->last_validated;
  if (uses_ea()) response.responder_age = own_age;
  return response;
}

bool ProxyCache::consider_caching(const Document& document,
                                  std::optional<ExpAge> responder_age, TimePoint now,
                                  std::optional<TimePoint> validated_at) {
  if (store_.contains(document.id)) return false;  // already have it
  const ExpAge own_age = expiration_age(now);
  if (!placement_->requester_should_cache(own_age,
                                          responder_age.value_or(ExpAge::infinite()))) {
    ++stats_.copies_declined;
    obs_placement_rejected_.inc();
    return false;
  }
  if (admit_tracked(document, now)) {
    // A copy fetched from a peer inherits the PEER's freshness clock (the
    // HTTP Age rule): replication must not extend a document's lifetime.
    if (validated_at) store_.set_coherence(document.id, document.version, *validated_at);
    ++stats_.copies_stored;
    obs_placement_accepted_.inc();
    return true;
  }
  return false;  // document larger than this cache
}

void ProxyCache::cache_after_origin_fetch(const Document& document, TimePoint now) {
  if (!placement_->requester_should_cache_after_origin_fetch()) return;
  if (store_.contains(document.id)) {
    // Possible if two users of this proxy race in trace order; the second
    // request would have been a hit. The group layer checks locally first,
    // so reaching here is a contract violation.
    throw std::logic_error("ProxyCache::cache_after_origin_fetch: already resident");
  }
  if (admit_tracked(document, now)) {
    ++stats_.copies_stored;
    obs_origin_admissions_.inc();
  }
}

HttpResponse ProxyCache::resolve_miss_as_parent(const Document& document,
                                                const HttpRequest& request, TimePoint now) {
  const ExpAge own_age = expiration_age(now);
  const ExpAge requester_age = request.requester_age.value_or(ExpAge::infinite());

  if (!store_.contains(document.id) &&
      placement_->parent_should_cache(own_age, requester_age)) {
    if (admit_tracked(document, now)) {
      ++stats_.copies_stored;
      obs_placement_accepted_.inc();
    }
  } else if (!store_.contains(document.id)) {
    ++stats_.copies_declined;
    obs_placement_rejected_.inc();
  }

  HttpResponse response;
  response.from = id_;
  response.to = request.from;
  response.document = document.id;
  response.body_size = document.size;
  response.source = ResponseSource::kOrigin;
  if (uses_ea()) response.responder_age = own_age;
  return response;
}

}  // namespace eacache
