// A single caching proxy: disk store + contention estimator + the local
// half of the placement protocol.
//
// The group layer (group/cache_group.h) moves the messages; the proxy
// implements the per-node behaviour of paper section 3.3:
//  * answer ICP presence probes (no metadata side effects);
//  * serve a local client hit (normal promoting touch);
//  * serve a sibling's HTTP fetch, applying the responder promotion rule;
//  * decide whether to keep a copy of a document fetched from elsewhere,
//    applying the requester placement rule;
//  * act as a hierarchical parent resolving a child's miss.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.h"
#include "digest/digest_directory.h"
#include "ea/contention.h"
#include "ea/placement.h"
#include "net/message.h"
#include "obs/metric_registry.h"
#include "storage/cache_store.h"
#include "storage/document.h"

namespace eacache {

/// Per-proxy serving counters (group metrics aggregate these).
struct ProxyStats {
  std::uint64_t client_requests = 0;   // requests that arrived at this proxy
  std::uint64_t local_hits = 0;
  std::uint64_t remote_fetches_served = 0;  // served as the responder
  std::uint64_t copies_stored = 0;          // admissions after remote fetch
  std::uint64_t copies_declined = 0;        // EA said "don't replicate"
  std::uint64_t promotions_suppressed = 0;  // responder-side silent hits
};

class ProxyCache {
 public:
  /// `placement` must outlive the proxy (the group owns one instance shared
  /// by all its proxies, since the scheme is group-wide). `digest_config`,
  /// when non-null, enables the Summary-Cache machinery: the proxy keeps a
  /// counting Bloom filter of its own directory and can publish snapshots.
  /// `registry`, when non-null and enabled, receives "proxy.<id>.*"
  /// counters (ICP answers, placement accept/reject, suppressed
  /// promotions, evictions by cause, EA age queries, ...). Pure
  /// accounting: binding a registry never changes proxy behaviour.
  ProxyCache(ProxyId id, Bytes capacity, std::unique_ptr<ReplacementPolicy> replacement,
             WindowConfig window, const PlacementPolicy* placement,
             const DigestConfig* digest_config = nullptr,
             MetricRegistry* registry = nullptr);

  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;

  [[nodiscard]] ProxyId id() const { return id_; }

  /// ICP presence probe — side-effect free on cache state (an ICP query is
  /// not a hit; only observability counters move).
  [[nodiscard]] bool answer_icp(DocumentId document) const {
    const bool present = store_.contains(document);
    note_icp_answer(present);
    return present;
  }

  /// Group-side hook for probes the group answers on this proxy's behalf
  /// (the coherence-aware ICP path peeks at freshness directly): counts an
  /// answered ICP probe without touching cache state.
  void note_icp_answer(bool hit) const {
    obs_icp_answered_.inc();
    if (hit) obs_icp_answered_hit_.inc();
  }

  /// The cache expiration age this proxy would piggyback right now.
  [[nodiscard]] ExpAge expiration_age(TimePoint now) const {
    return contention_.cache_expiration_age(now);
  }

  /// expiration_age without the ea.age_queries instrumentation — for the
  /// live stats seam, which must not perturb the protocol counters.
  [[nodiscard]] ExpAge peek_expiration_age(TimePoint now) const {
    return contention_.peek_expiration_age(now);
  }

  /// Client request that can be answered locally: promoting touch.
  /// Returns the (resident) document size, or nullopt on local miss.
  std::optional<Bytes> serve_local(DocumentId document, TimePoint now);

  /// Responder side of a sibling fetch. Pre: the document is resident (the
  /// caller just got a positive ICP answer; in the simulation nothing can
  /// evict between the ICP reply and the fetch). Applies the promotion rule
  /// and returns the HTTP response (with our age piggybacked iff the
  /// requester piggybacked one — i.e. the group runs the EA scheme).
  [[nodiscard]] HttpResponse serve_remote(const HttpRequest& request, TimePoint now);

  /// Digest-discovery variant of serve_remote: a probed peer may NOT have
  /// the document (stale snapshot / Bloom collision) and then answers with
  /// a header-only found=false response instead of throwing.
  [[nodiscard]] HttpResponse serve_fetch(const HttpRequest& request, TimePoint now);

  /// Requester side after receiving a document from another cache (sibling
  /// responder or hierarchical parent). Decides whether to keep a copy.
  /// Returns true if a copy was stored. When `validated_at` is given, the
  /// stored copy inherits that freshness clock (and `document.version`)
  /// instead of counting as freshly validated.
  bool consider_caching(const Document& document, std::optional<ExpAge> responder_age,
                        TimePoint now, std::optional<TimePoint> validated_at = std::nullopt);

  /// Revalidation hooks (coherence experiments; group-orchestrated).
  bool mark_validated(DocumentId document, TimePoint now) {
    return store_.mark_validated(document, now);
  }
  /// Drop a stale copy (a 200 after If-Modified-Since replaces it).
  bool invalidate(DocumentId document, TimePoint now) { return store_.remove(document, now); }

  /// Crash/restart: lose the entire cache (explicit removals; the local
  /// digest tracks them through the eviction observer).
  void flush(TimePoint now);

  /// Requester side after a direct origin fetch (group-wide miss in the
  /// distributed architecture): the conventional always-cache step.
  void cache_after_origin_fetch(const Document& document, TimePoint now);

  /// Parent side of a hierarchical miss (paper section 3.3): the parent has
  /// fetched `document` from the origin on behalf of `requester_age`'s
  /// owner; it stores a copy iff the placement policy says so. Returns the
  /// response carrying our age.
  [[nodiscard]] HttpResponse resolve_miss_as_parent(const Document& document,
                                                    const HttpRequest& request, TimePoint now);

  void note_client_request() { ++stats_.client_requests; }

  /// Digest support (only when constructed with a DigestConfig).
  [[nodiscard]] bool has_digest() const { return digest_.has_value(); }
  [[nodiscard]] BloomFilter publish_digest() const;

  [[nodiscard]] const CacheStore& store() const { return store_; }
  [[nodiscard]] const ContentionEstimator& contention() const { return contention_; }
  [[nodiscard]] const ProxyStats& stats() const { return stats_; }

  /// Validation hook: observe this proxy's evictions (same contract as
  /// CacheStore::add_eviction_observer — the observer must outlive us).
  void add_eviction_observer(EvictionObserver* observer) {
    store_.add_eviction_observer(observer);
  }

 private:
  [[nodiscard]] bool uses_ea() const { return placement_->kind() != PlacementKind::kAdHoc; }
  /// Admit into the store, mirroring the admission into the local digest.
  bool admit_tracked(const Document& document, TimePoint now);

  ProxyId id_;
  CacheStore store_;
  ContentionEstimator contention_;
  const PlacementPolicy* placement_;
  std::optional<LocalDigest> digest_;
  ProxyStats stats_;

  // Observability handles (null = off). Registered once at construction;
  // the hot path is a pointer test + add.
  MetricRegistry::Counter obs_icp_answered_;
  MetricRegistry::Counter obs_icp_answered_hit_;
  MetricRegistry::Counter obs_local_hits_;
  MetricRegistry::Counter obs_fetches_served_;
  MetricRegistry::Counter obs_fetches_failed_;
  MetricRegistry::Counter obs_placement_accepted_;
  MetricRegistry::Counter obs_placement_rejected_;
  MetricRegistry::Counter obs_promotions_suppressed_;
  MetricRegistry::Counter obs_origin_admissions_;
};

}  // namespace eacache
