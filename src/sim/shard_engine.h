// Sharded parallel simulation engine (ExecutionPolicy::shards >= 1).
//
// The classic drivers (sim/simulator.h) run the whole group on one
// EventQueue. This engine partitions the proxy topology into shards
// (group/partition.h), gives each shard its own EventQueue, clock and
// private accounting, and synchronizes the shards with conservative
// lookahead windows:
//
//   * the window width W is RunSpec::effective_lookahead() — by
//     construction no shard-crossing message can have a delay below W, so
//     a message sent inside window [S, S+W) always delivers at or after
//     S+W: shards never need to roll back (classic conservative PDES);
//   * every cross-proxy interaction (ICP probe/reply, sibling fetch,
//     parent-chain hop) is an explicit ShardMessage
//     (sim/shard_messages.h) exchanged through per-shard mailboxes at
//     window barriers;
//   * the next window start is the last barrier arriver's computation:
//     the global minimum over all shards' earliest pending work, rounded
//     down to a multiple of W — quiet stretches of the trace are skipped
//     in one hop.
//
// Determinism guarantee (pinned by ShardEngineTest): the result JSON is
// BYTE-IDENTICAL for shards=1 and shards=N. Everything order-sensitive is
// normalized — mailbox batches are sorted by ShardMessageOrder before
// injection, admissions are scheduled after the batch, same-shard messages
// ride the mailbox exactly like cross-shard ones, and every merged
// aggregate (GroupMetrics, TransportStats, MetricRegistry, series samples)
// is commutative or merged in global proxy-id order.
//
// The engine accepts the RunSpec subset RunSpec::validate() admits for
// sharded execution: ICP discovery, cooperative routing, no coherence, no
// prefetch, no digests, no ICP loss, no span tracing. Latencies recorded
// in GroupMetrics are the paper's per-outcome aggregate charges (matching
// the classic synchronous driver), not elapsed window time.
#pragma once

#include "core/run_result.h"
#include "core/run_spec.h"
#include "trace/trace.h"

namespace eacache {

/// Run `trace` through the sharded engine. `spec.exec.shards` must be >= 1
/// and `spec.validate(RunTarget::kSimulation)` empty (throws
/// std::invalid_argument otherwise; shard counts above the client-facing
/// proxy count are clamped, not rejected). shards == 1 executes the same
/// message-driven schedule inline on the calling thread — the determinism
/// baseline; shards >= 2 spawn one worker thread per shard.
[[nodiscard]] SimulationResult run_sharded_simulation(const Trace& trace, const RunSpec& spec,
                                                      PhaseTimings* timings = nullptr);

}  // namespace eacache
