// Shard-crossing messages: every cross-proxy interaction of the sharded
// engine, made explicit.
//
// The classic drivers resolve a request by calling straight into the peer
// proxy's methods. The sharded engine cannot — the peer may live on another
// shard's clock — so each interaction becomes a ShardMessage with a
// deterministic delivery timestamp at least one lookahead window in the
// future (core/run_spec.h::default_lookahead). Messages are exchanged at
// window barriers and sorted by `ShardMessageOrder` before injection, which
// erases mailbox arrival order from the schedule: the engine's event order,
// and therefore its result JSON, is identical for 1 shard and N shards.
//
// The flat struct doubles as the wire format for a future cross-process
// transport: encode/decode round-trip every field (fixed little-endian
// layout, pinned by ShardMessageCodecTest).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "ea/expiration_age.h"
#include "net/message.h"

namespace eacache {

/// One hop of the sharded request protocol.
///  * kIcpProbe      requester -> target     presence query
///  * kIcpReply      target -> requester     hit / miss / peer-down
///  * kFetchRequest  requester -> responder  sibling HTTP fetch
///  * kFetchBody     responder -> requester  body (or found=false)
///  * kParentRequest child -> parent         hierarchical miss forwarding
///  * kParentBody    parent -> child         body flowing back down
enum class ShardMessageKind : std::uint8_t {
  kIcpProbe = 0,
  kIcpReply = 1,
  kFetchRequest = 2,
  kFetchBody = 3,
  kParentRequest = 4,
  kParentBody = 5,
};

/// ICP answer classes the reply hop carries. A peer inside an injected
/// outage window never answers; the requester learns that at the reply
/// deadline and books the probe as a loss (matching the classic driver).
enum class ShardProbeStatus : std::uint8_t { kMiss = 0, kHit = 1, kDown = 2 };

struct ShardMessage {
  ShardMessageKind kind = ShardMessageKind::kIcpProbe;
  /// Trace index of the request this hop serves — the deterministic
  /// identity that keys requester-side contexts and the injection order.
  std::uint64_t request_index = 0;
  /// Per-request hop sequence at the sender (diagnostic; order uses kind).
  std::uint32_t hop = 0;
  ProxyId from = 0;
  ProxyId to = 0;
  /// Absolute simulated delivery instant; always >= send time + lookahead.
  TimePoint deliver_at{};
  DocumentId document = 0;
  /// kFetchRequest/kParentRequest: the requested document's size (needed
  /// for an origin fetch at the top of a parent chain). kFetchBody/
  /// kParentBody: the body size.
  Bytes size = 0;
  /// kIcpReply: the probe answer. Other kinds: kMiss.
  ShardProbeStatus status = ShardProbeStatus::kMiss;
  /// kFetchBody: false when the responder evicted the copy after its ICP
  /// reply (served as a header-only not-found, like a stale digest probe).
  bool found = true;
  /// kParentBody: who ultimately produced the body (cache above the ICP
  /// horizon vs origin). Other kinds: kCache.
  ResponseSource source = ResponseSource::kCache;
  /// EA piggyback: requester age on request hops, responder age on body
  /// hops; nullopt under ad-hoc placement.
  std::optional<ExpAge> age;
};

/// Strict weak order for barrier injection: (deliver_at, request_index,
/// kind, from, to). Total over any batch the engine can produce — a request
/// never has two identical hops in flight — and independent of mailbox
/// arrival order, which is what makes injection deterministic.
struct ShardMessageOrder {
  [[nodiscard]] bool operator()(const ShardMessage& a, const ShardMessage& b) const {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.request_index != b.request_index) return a.request_index < b.request_index;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  }
};

/// Fixed little-endian wire encoding (the cross-process transport format).
/// Infinite ages ride as the all-ones millisecond pattern; a missing age is
/// a presence byte.
[[nodiscard]] std::vector<std::uint8_t> encode_shard_message(const ShardMessage& message);

/// Inverse of encode_shard_message. Throws std::invalid_argument on short
/// buffers, trailing bytes or out-of-range enum values.
[[nodiscard]] ShardMessage decode_shard_message(const std::vector<std::uint8_t>& wire);

}  // namespace eacache
