#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "core/wall_timer.h"
#include "event/event_queue.h"
#include "sim/request_pipeline.h"
#include "sim/shard_engine.h"
#include "validate/invariants.h"

namespace eacache {

SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                const SimulationOptions& options, PhaseTimings* timings) {
  config.validate_or_throw();  // aggregate ALL config errors up front
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("run_simulation: trace must be time-ordered");
  }

  const WallTimer sim_timer;
  CacheGroup group(config);
  if (!options.faults.outages.empty()) group.set_outages(options.faults.outages);
  EventQueue queue;
  SimulationResult result;

  if (options.snapshot_period > Duration::zero() && !trace.empty()) {
    PeriodicEvent::start(queue, trace.requests.front().at + options.snapshot_period,
                         options.snapshot_period, [&](TimePoint at) {
                           MetricsSnapshot snap;
                           snap.at = at;
                           snap.hit_rate = group.metrics().hit_rate();
                           snap.byte_hit_rate = group.metrics().byte_hit_rate();
                           snap.total_requests = group.metrics().total_requests();
                           result.snapshots.push_back(snap);
                         });
  }

  // Observability series: per-proxy CacheExpAge + occupancy, sampled
  // obs.series_points times across the trace's span.
  if (config.obs.series_points > 0 && !trace.empty()) {
    const Duration span = trace.requests.back().at - trace.requests.front().at;
    const Duration period =
        std::max(msec(1), span / static_cast<SimClock::rep>(config.obs.series_points));
    PeriodicEvent::start(queue, trace.requests.front().at + period, period,
                         [&](TimePoint at) {
                           ProxySeriesPoint point;
                           point.at = at;
                           point.proxies.reserve(group.num_proxies());
                           for (std::size_t p = 0; p < group.num_proxies(); ++p) {
                             const ProxyCache& proxy = group.proxy(static_cast<ProxyId>(p));
                             ProxySeriesSample sample;
                             const ExpAge age = proxy.expiration_age(at);
                             sample.finite = !age.is_infinite();
                             if (sample.finite) sample.exp_age_ms = age.millis();
                             sample.resident_bytes = proxy.store().resident_bytes();
                             sample.resident_docs = proxy.store().resident_count();
                             point.proxies.push_back(sample);
                           }
                           result.proxy_series.push_back(std::move(point));
                         });
  }

  for (const FaultPlan::Flush& flush : options.faults.flushes) {
    queue.schedule_at(flush.at, [&group, proxy = flush.proxy](TimePoint at) {
      group.flush_proxy(proxy, at);
    });
  }

  // Invariant net (DESIGN.md §10): attaches to the group's observer seams,
  // audits every driver hook, and is torn down before the group.
  std::optional<InvariantChecker> checker;
  if (options.validate) checker.emplace(group);

  if (config.pipeline.event_driven) {
    // Event-driven driver: requests are admitted at their trace timestamps
    // and progress as staged state machines on the queue, overlapping in
    // simulated time. The explicit drain (rather than queue.run()) stops as
    // soon as the last request completes — periodic snapshot events would
    // otherwise reschedule forever.
    RequestPipeline pipeline(group, queue);
    for (const Request& request : trace.requests) {
      queue.run_until(request.at);
      pipeline.start(request);
      if (checker) checker->after_request(request, request.at);
    }
    while (pipeline.in_flight() > 0 && queue.step()) {
      if (checker) checker->after_step(queue.now());
    }
    result.pipeline = pipeline.stats();
    if (checker) checker->finish(trace.size(), &result.pipeline);
  } else {
    for (const Request& request : trace.requests) {
      queue.run_until(request.at);  // fire any periodic/flush events due now
      group.serve(request);
      if (checker) checker->after_request(request, request.at);
    }
    if (checker) checker->finish(trace.size(), nullptr);
  }
  if (checker) result.validation = checker->take_report();
  if (timings != nullptr) timings->sim_ms = sim_timer.elapsed_ms();

  const WallTimer report_timer;
  group.export_final_gauges();
  result.metrics = group.metrics();
  result.transport = group.transport_stats();
  result.coherence = group.coherence_stats();
  result.prefetch = group.prefetch_stats();
  result.prefetch.still_pending = group.pending_prefetches();
  // Snapshot-while-instrumenting is the hazard here: the copy must happen
  // only after the group's last metric write. export_final_gauges() above
  // is that last write; snapshot() copies data, never handles.
  result.registry = group.registry().snapshot();
  result.trace_log = group.trace_log();
  result.average_cache_expiration_age = group.average_cache_expiration_age();
  for (std::size_t p = 0; p < group.num_proxies(); ++p) {
    result.per_cache_expiration_age.push_back(group.proxy(static_cast<ProxyId>(p))
                                                  .contention()
                                                  .lifetime_average());
    result.proxy_stats.push_back(group.proxy(static_cast<ProxyId>(p)).stats());
  }
  result.total_resident_copies = group.total_resident_copies();
  result.unique_resident_documents = group.unique_resident_documents();
  result.replication_factor = group.replication_factor();
  if (timings != nullptr) timings->report_ms = report_timer.elapsed_ms();
  return result;
}

SimulationResult run(const Trace& trace, const RunSpec& spec, PhaseTimings* timings) {
  spec.validate_or_throw(RunTarget::kSimulation);
  if (spec.exec.sharded()) {
    return run_sharded_simulation(trace, spec, timings);
  }
  SimulationOptions options;
  options.snapshot_period = spec.snapshot_period;
  options.validate = spec.check_invariants;
  options.faults = spec.faults;
  return run_simulation(trace, spec.group, options, timings);
}

}  // namespace eacache
