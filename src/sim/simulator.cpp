#include "sim/simulator.h"

#include <stdexcept>

#include "event/event_queue.h"

namespace eacache {

SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                const SimulationOptions& options) {
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("run_simulation: trace must be time-ordered");
  }

  CacheGroup group(config);
  EventQueue queue;
  SimulationResult result;

  if (options.snapshot_period > Duration::zero() && !trace.empty()) {
    PeriodicEvent::start(queue, trace.requests.front().at + options.snapshot_period,
                         options.snapshot_period, [&](TimePoint at) {
                           MetricsSnapshot snap;
                           snap.at = at;
                           snap.hit_rate = group.metrics().hit_rate();
                           snap.byte_hit_rate = group.metrics().byte_hit_rate();
                           snap.total_requests = group.metrics().total_requests();
                           result.snapshots.push_back(snap);
                         });
  }

  for (const SimulationOptions::FlushEvent& flush : options.flush_events) {
    queue.schedule_at(flush.at, [&group, proxy = flush.proxy](TimePoint at) {
      group.flush_proxy(proxy, at);
    });
  }

  for (const Request& request : trace.requests) {
    queue.run_until(request.at);  // fire any periodic/flush events due now
    group.serve(request);
  }

  result.metrics = group.metrics();
  result.transport = group.transport_stats();
  result.coherence = group.coherence_stats();
  result.prefetch = group.prefetch_stats();
  result.prefetch.still_pending = group.pending_prefetches();
  result.average_cache_expiration_age = group.average_cache_expiration_age();
  for (std::size_t p = 0; p < group.num_proxies(); ++p) {
    result.per_cache_expiration_age.push_back(group.proxy(static_cast<ProxyId>(p))
                                                  .contention()
                                                  .lifetime_average());
    result.proxy_stats.push_back(group.proxy(static_cast<ProxyId>(p)).stats());
  }
  result.total_resident_copies = group.total_resident_copies();
  result.unique_resident_documents = group.unique_resident_documents();
  result.replication_factor = group.replication_factor();
  return result;
}

}  // namespace eacache
