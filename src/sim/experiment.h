// Experiment harness shared by the bench binaries: capacity ladders, scheme
// head-to-heads and sweep helpers that mirror the paper's section 4 setup.
// All helpers fan their runs out through SweepRunner (sim/sweep.h); pass a
// SweepOptions to control the worker count or attach a streaming sink.
#pragma once

#include <span>
#include <vector>

#include "group/cache_group.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "trace/trace.h"

namespace eacache {

/// The paper's aggregate-cache-size ladder: 100KB, 1MB, 10MB, 100MB, 1GB.
[[nodiscard]] std::span<const Bytes> paper_capacity_ladder();

/// One capacity point of an ad-hoc vs EA head-to-head.
struct SchemeComparison {
  Bytes aggregate_capacity = 0;
  SimulationResult adhoc;
  SimulationResult ea;
};

/// Run both schemes at each capacity on the same trace with otherwise
/// identical configuration (the base config's `placement` is overridden).
[[nodiscard]] std::vector<SchemeComparison> compare_schemes_over_capacities(
    const Trace& trace, GroupConfig base, std::span<const Bytes> capacities,
    const SweepOptions& sweep = {});

/// Group-size sweep at a fixed capacity (the paper ran 2, 4 and 8 caches).
struct GroupSizePoint {
  std::size_t num_proxies = 0;
  SimulationResult adhoc;
  SimulationResult ea;
};

[[nodiscard]] std::vector<GroupSizePoint> compare_schemes_over_group_sizes(
    const Trace& trace, GroupConfig base, std::span<const std::size_t> group_sizes,
    const SweepOptions& sweep = {});

}  // namespace eacache
