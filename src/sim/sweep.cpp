#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include <string>

#include "common/config.h"
#include "common/logging.h"

namespace eacache {

namespace {

/// Wall-clock cost of building each trace, keyed by the trace object, so
/// sweep rows can report "trace load" separately from simulation time. A
/// trace loaded once and replayed by N jobs charges its cost to each row
/// that uses it (the lookup is free; the load happened once).
std::mutex& trace_load_mutex() {
  static std::mutex mutex;
  return mutex;
}
std::map<const Trace*, double>& trace_load_table() {
  static std::map<const Trace*, double> table;
  return table;
}

void note_trace_load(const Trace* trace, double ms) {
  std::lock_guard<std::mutex> lock(trace_load_mutex());
  trace_load_table()[trace] = ms;
}

double trace_load_ms_for(const Trace* trace) {
  std::lock_guard<std::mutex> lock(trace_load_mutex());
  const auto it = trace_load_table().find(trace);
  return it != trace_load_table().end() ? it->second : 0.0;
}

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

TraceRef TraceCache::get_or_create(const std::string& key, const Factory& factory) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  std::call_once(entry->once, [&] {
    const auto start = std::chrono::steady_clock::now();
    entry->trace = std::make_shared<const Trace>(factory());
    note_trace_load(entry->trace.get(), elapsed_ms(start));
  });
  return entry->trace;
}

std::size_t TraceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

TraceCache& TraceCache::global() {
  static TraceCache cache;
  return cache;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

std::size_t SweepRunner::add(SweepJob job) {
  if (!job.trace) {
    throw std::invalid_argument("SweepRunner: job '" + job.label + "' has no trace");
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SweepRunner::add(std::string label, GroupConfig config, TraceRef trace,
                             SimulationOptions options) {
  return add(SweepJob{std::move(label), std::move(config), std::move(trace),
                      std::move(options)});
}

std::vector<SweepRunResult> SweepRunner::run() {
  const std::size_t count = jobs_.size();
  std::vector<SweepRunResult> results(count);
  if (count == 0) return results;

  std::vector<std::exception_ptr> errors(count);

  const auto execute = [&](std::size_t i) {
    const SweepJob& job = jobs_[i];
    SweepRunResult& out = results[i];
    out.label = job.label;
    GroupConfig config = job.config;
    if (options_.obs_override) config.obs = *options_.obs_override;
    out.config = config;
    SimulationOptions sim_options = job.options;
    if (options_.validate) sim_options.validate = true;
    out.trace_load_ms = trace_load_ms_for(job.trace.get());
    const auto start = std::chrono::steady_clock::now();
    try {
      out.result = run_simulation(*job.trace, config, sim_options, &out.timings);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    out.wall_ms = elapsed_ms(start);
  };

  const std::size_t workers = std::min(resolve_job_count(options_.jobs), count);
  if (workers <= 1) {
    // Serial fast path: no pool, sink fires as each job completes.
    for (std::size_t i = 0; i < count; ++i) {
      const ScopedLogTag tag("j" + std::to_string(i));
      execute(i);
      if (options_.sink && !errors[i]) options_.sink(results[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable completed_cv;
    std::vector<char> completed(count, 0);  // guarded by mutex

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          // Worker/job tag so interleaved log lines stay attributable.
          const ScopedLogTag tag("w" + std::to_string(w) + "/j" + std::to_string(i));
          execute(i);
          {
            std::lock_guard<std::mutex> lock(mutex);
            completed[i] = 1;
          }
          completed_cv.notify_one();
        }
      });
    }

    // Drain the completed prefix in submission order; the sink runs here,
    // on the caller's thread, so sinks need no locking of their own.
    std::size_t emitted = 0;
    std::unique_lock<std::mutex> lock(mutex);
    while (emitted < count) {
      completed_cv.wait(lock, [&] { return completed[emitted] != 0; });
      while (emitted < count && completed[emitted] != 0) {
        const std::size_t i = emitted++;
        if (options_.sink && !errors[i]) {
          lock.unlock();
          options_.sink(results[i]);
          lock.lock();
        }
      }
    }
    lock.unlock();
    for (std::thread& thread : pool) thread.join();
  }

  jobs_.clear();
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace eacache
