#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include <string>

#include "common/config.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "core/wall_timer.h"
#include "trace/workload.h"

namespace eacache {

namespace {

/// Wall-clock cost of building each trace, keyed by trace address, so sweep
/// rows can report "trace load" separately from simulation time. A trace
/// loaded once and replayed by N jobs charges its cost to each row that
/// uses it (the lookup is free; the load happened once).
///
/// Rows are erased by the owning shared_ptr's deleter when the trace dies:
/// a later allocation recycling the address can never read a stale cost,
/// and the table cannot grow without bound across cleared caches
/// (pinned by TraceCacheTest.TraceLoadTableRowsDieWithTheirTrace).
class TraceLoadTable {
 public:
  /// Deliberately leaked: trace deleters call back in during static
  /// destruction (e.g. TraceCache::global() tearing down at exit), so the
  /// table must outlive every static TraceRef holder.
  static TraceLoadTable& instance() {
    static TraceLoadTable* table = new TraceLoadTable;
    return *table;
  }

  void note(const Trace* trace, double ms) EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    table_[trace] = ms;
  }

  [[nodiscard]] double lookup(const Trace* trace) const EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = table_.find(trace);
    return it != table_.end() ? it->second : 0.0;
  }

  void forget(const Trace* trace) EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    table_.erase(trace);
  }

  [[nodiscard]] std::size_t size() const EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return table_.size();
  }

 private:
  TraceLoadTable() = default;

  mutable Mutex mutex_;
  std::map<const Trace*, double> table_ EACACHE_GUARDED_BY(mutex_);
};

/// Submission-order completion tracker for the worker pool: workers mark
/// jobs done, the caller thread drains the contiguous completed prefix.
/// The mutex doubles as the publication edge for each job's results[i] /
/// errors[i] slots — the worker's writes happen-before mark_done's release,
/// which happens-before wait_completed_prefix's acquire on the drain
/// thread, so the sink reads fully written rows without its own locking.
class CompletionBoard {
 public:
  explicit CompletionBoard(std::size_t count) : completed_(count, 0) {}

  void mark_done(std::size_t index) EACACHE_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      completed_[index] = 1;
    }
    cv_.notify_one();
  }

  /// Blocks until job `from` completes, then returns one past the end of
  /// the contiguous completed run starting there. Flags are monotonic, so
  /// a stale snapshot can only undershoot — never report an unfinished job.
  [[nodiscard]] std::size_t wait_completed_prefix(std::size_t from) EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (completed_[from] == 0) cv_.wait(mutex_);
    std::size_t end = from + 1;
    while (end < completed_.size() && completed_[end] != 0) ++end;
    return end;
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  std::vector<char> completed_ EACACHE_GUARDED_BY(mutex_);
};

}  // namespace

namespace detail {
std::size_t trace_load_table_size() { return TraceLoadTable::instance().size(); }
}  // namespace detail

TraceRef TraceCache::get_or_create(const std::string& key, const Factory& factory) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(mutex_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
  }
  return load_entry(entry, factory);
}

TraceRef TraceCache::load_entry(const std::shared_ptr<Entry>& entry, const Factory& factory) {
  {
    MutexLock lock(entry->mutex);
    for (;;) {
      if (entry->state == Entry::State::kReady) return entry->trace;
      if (entry->state == Entry::State::kIdle) break;
      entry->ready_cv.wait(entry->mutex);  // someone else is loading
    }
    entry->state = Entry::State::kLoading;
  }

  try {
    const WallTimer load_timer;
    // The deleter retires this trace's cost row with the trace itself —
    // address reuse must never resurface a stale load time.
    std::shared_ptr<const Trace> trace(new Trace(factory()), [](const Trace* dead) {
      TraceLoadTable::instance().forget(dead);
      delete dead;
    });
    TraceLoadTable::instance().note(trace.get(), load_timer.elapsed_ms());
    MutexLock lock(entry->mutex);
    entry->trace = std::move(trace);
    entry->state = Entry::State::kReady;
    entry->ready_cv.notify_all();
    return entry->trace;
  } catch (...) {
    // Roll back to kIdle so the next caller retries the factory.
    MutexLock lock(entry->mutex);
    entry->state = Entry::State::kIdle;
    entry->ready_cv.notify_all();
    throw;
  }
}

std::size_t TraceCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void TraceCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

TraceCache& TraceCache::global() {
  // Touch the (leaked) load table before constructing the cache: entry
  // deleters call into it when this static is destroyed at exit.
  TraceLoadTable::instance();
  static TraceCache cache;
  return cache;
}

TraceRef get_or_create_workload(TraceCache& cache, const WorkloadSpec& spec) {
  return cache.get_or_create(format_workload_spec(spec),
                             [&spec] { return generate_workload_trace(spec); });
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

std::size_t SweepRunner::add(SweepJob job) {
  if (!job.trace) {
    throw std::invalid_argument("SweepRunner: job '" + job.label + "' has no trace");
  }
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::size_t SweepRunner::add(std::string label, RunSpec spec, TraceRef trace) {
  return add(SweepJob{std::move(label), std::move(spec), std::move(trace)});
}

std::size_t SweepRunner::add(std::string label, GroupConfig config, TraceRef trace,
                             SimulationOptions options) {
  RunSpec spec;
  spec.group = std::move(config);
  spec.snapshot_period = options.snapshot_period;
  spec.check_invariants = options.validate;
  spec.faults = std::move(options.faults);
  return add(std::move(label), std::move(spec), std::move(trace));
}

std::vector<SweepRunResult> SweepRunner::run() {
  const std::size_t count = jobs_.size();
  std::vector<SweepRunResult> results(count);
  if (count == 0) return results;

  std::vector<std::exception_ptr> errors(count);

  const auto execute = [&](std::size_t i) {
    const SweepJob& job = jobs_[i];
    SweepRunResult& out = results[i];
    out.label = job.label;
    RunSpec spec = job.spec;
    if (options_.obs_override) spec.group.obs = *options_.obs_override;
    if (options_.validate) spec.check_invariants = true;
    out.config = spec.group;
    out.workload = spec.workload;
    out.trace_load_ms = TraceLoadTable::instance().lookup(job.trace.get());
    const WallTimer job_timer;
    try {
      out.result = eacache::run(*job.trace, spec, &out.timings);
    } catch (...) {
      errors[i] = std::current_exception();
    }
    out.wall_ms = job_timer.elapsed_ms();
  };

  const std::size_t workers = std::min(resolve_job_count(options_.jobs), count);
  if (workers <= 1) {
    // Serial fast path: no pool, sink fires as each job completes.
    for (std::size_t i = 0; i < count; ++i) {
      const ScopedLogTag tag("j" + std::to_string(i));
      execute(i);
      if (options_.sink && !errors[i]) options_.sink(results[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    CompletionBoard board(count);

    std::vector<std::thread> pool;
    // Join-on-unwind guard: a sink that throws mid-drain must not let the
    // exception reach ~thread() on joinable workers (std::terminate).
    // Workers always run their queue to exhaustion, so "every job runs"
    // holds even when the caller's sink gives up early — pinned by
    // SweepRunnerTest.SinkExceptionJoinsWorkersAndPropagates.
    struct PoolJoiner {
      std::vector<std::thread>& pool;
      ~PoolJoiner() {
        for (std::thread& thread : pool) {
          if (thread.joinable()) thread.join();
        }
      }
    } joiner{pool};

    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          // Worker/job tag so interleaved log lines stay attributable.
          const ScopedLogTag tag("w" + std::to_string(w) + "/j" + std::to_string(i));
          execute(i);
          board.mark_done(i);
        }
      });
    }

    // Drain the completed prefix in submission order; the sink runs here,
    // on the caller's thread, so sinks need no locking of their own.
    std::size_t emitted = 0;
    while (emitted < count) {
      const std::size_t ready = board.wait_completed_prefix(emitted);
      for (; emitted < ready; ++emitted) {
        if (options_.sink && !errors[emitted]) options_.sink(results[emitted]);
      }
    }
  }

  jobs_.clear();
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace eacache
