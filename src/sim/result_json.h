// JSON serialization of sweep rows. The per-run result serializer itself
// (append_simulation_result & friends) lives in core/run_result_json.h —
// the simulation-free core owns the result schema so the daemon emits the
// same JSON; this header re-exports it and adds the sweep-row layer.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "core/run_result_json.h"
#include "metrics/json.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace eacache {

/// Emit one sweep run as the next value of an existing writer: the job's
/// label, the wall-clock cost of the run, a summary of the GroupConfig it
/// ran under, and the full SimulationResult.
void append_sweep_run(JsonWriter& json, const SweepRunResult& run);

[[nodiscard]] std::string sweep_run_to_json(const SweepRunResult& run);

/// A SweepOptions::sink that streams one JSON object per completed run to
/// `out`, one per line, in submission order. The stream must outlive the
/// sweep.
[[nodiscard]] std::function<void(const SweepRunResult&)> make_json_row_sink(std::ostream& out);

}  // namespace eacache
