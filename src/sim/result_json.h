// JSON serialization of SimulationResult — one self-describing object per
// run, consumed by plotting scripts and the experiment_runner's --json
// output.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "metrics/json.h"
#include "sim/simulator.h"
#include "sim/sweep.h"

namespace eacache {

/// Emit the result as the NEXT VALUE of an existing writer (for embedding
/// in larger documents, e.g. the experiment_runner's per-run array).
void append_simulation_result(JsonWriter& json, const SimulationResult& result);

/// Emit the result as a standalone JSON document.
void write_simulation_result_json(std::ostream& out, const SimulationResult& result);

[[nodiscard]] std::string simulation_result_to_json(const SimulationResult& result);

/// Emit one sweep run as the next value of an existing writer: the job's
/// label, the wall-clock cost of the run, a summary of the GroupConfig it
/// ran under, and the full SimulationResult.
void append_sweep_run(JsonWriter& json, const SweepRunResult& run);

[[nodiscard]] std::string sweep_run_to_json(const SweepRunResult& run);

/// A SweepOptions::sink that streams one JSON object per completed run to
/// `out`, one per line, in submission order. The stream must outlive the
/// sweep.
[[nodiscard]] std::function<void(const SweepRunResult&)> make_json_row_sink(std::ostream& out);

}  // namespace eacache
