// JSON serialization of SimulationResult — one self-describing object per
// run, consumed by plotting scripts and the experiment_runner's --json
// output.
#pragma once

#include <iosfwd>
#include <string>

#include "metrics/json.h"
#include "sim/simulator.h"

namespace eacache {

/// Emit the result as the NEXT VALUE of an existing writer (for embedding
/// in larger documents, e.g. the experiment_runner's per-run array).
void append_simulation_result(JsonWriter& json, const SimulationResult& result);

/// Emit the result as a standalone JSON document.
void write_simulation_result_json(std::ostream& out, const SimulationResult& result);

[[nodiscard]] std::string simulation_result_to_json(const SimulationResult& result);

}  // namespace eacache
