// Trace-driven simulation driver.
//
// Feeds a time-ordered trace through a CacheGroup on the discrete-event
// clock. The event queue carries the periodic machinery (metric snapshots);
// requests are dispatched in trace order at their own timestamps.
#pragma once

#include <vector>

#include "core/run_result.h"
#include "group/cache_group.h"
#include "sim/fault_plan.h"
#include "trace/trace.h"

namespace eacache {

struct SimulationOptions {
  /// Period for hit-rate time-series snapshots; zero disables them.
  Duration snapshot_period = Duration::zero();

  /// Attach the invariant checker (src/validate/invariants.h) to the run:
  /// every request is audited against the paper's conservation laws and the
  /// outcome lands in SimulationResult::validation (and under "validation"
  /// in result JSON). Off by default — auditing re-queries expiration ages,
  /// which shifts obs counters (never simulation outcomes).
  bool validate = false;

  /// Declarative fault injection: proxy flushes (crash/restart) and
  /// transient peer-outage windows. See sim/fault_plan.h.
  FaultPlan faults;

  /// DEPRECATED shim for the original flush-only API: merged into
  /// `faults.flushes` by run_simulation. Prefer FaultPlan.
  struct FlushEvent {
    TimePoint at{};
    ProxyId proxy = 0;
  };
  std::vector<FlushEvent> flush_events;
};

// ProxySeriesSample/ProxySeriesPoint, PhaseTimings and SimulationResult
// itself live in core/run_result.h — the driver-independent result schema
// shared with the daemon layer.

/// Run `trace` through a fresh group built from `config`. The trace must be
/// time-ordered (throws std::invalid_argument otherwise). When `timings` is
/// non-null it receives the wall-clock phase split.
[[nodiscard]] SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                              const SimulationOptions& options = {},
                                              PhaseTimings* timings = nullptr);

}  // namespace eacache
