// Trace-driven simulation driver.
//
// Feeds a time-ordered trace through a CacheGroup on the discrete-event
// clock. The event queue carries the periodic machinery (metric snapshots);
// requests are dispatched in trace order at their own timestamps.
#pragma once

#include <vector>

#include "ea/expiration_age.h"
#include "group/cache_group.h"
#include "metrics/metrics.h"
#include "net/transport.h"
#include "proxy/proxy_cache.h"
#include "trace/trace.h"

namespace eacache {

struct SimulationOptions {
  /// Period for hit-rate time-series snapshots; zero disables them.
  Duration snapshot_period = Duration::zero();

  /// Failure injection: each event flushes one proxy's entire cache at the
  /// given simulated time (a crash/restart losing its disk).
  struct FlushEvent {
    TimePoint at{};
    ProxyId proxy = 0;
  };
  std::vector<FlushEvent> flush_events;
};

struct SimulationResult {
  GroupMetrics metrics;
  TransportStats transport;
  CoherenceStats coherence;
  PrefetchStats prefetch;

  /// Table 1's metric, measured over the whole run.
  ExpAge average_cache_expiration_age = ExpAge::infinite();
  std::vector<ExpAge> per_cache_expiration_age;

  /// End-of-run occupancy diagnostics.
  std::size_t total_resident_copies = 0;
  std::size_t unique_resident_documents = 0;
  double replication_factor = 0.0;

  std::vector<ProxyStats> proxy_stats;
  std::vector<MetricsSnapshot> snapshots;
};

/// Run `trace` through a fresh group built from `config`. The trace must be
/// time-ordered (throws std::invalid_argument otherwise).
[[nodiscard]] SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                              const SimulationOptions& options = {});

}  // namespace eacache
