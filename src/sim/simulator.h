// Trace-driven simulation driver.
//
// Feeds a time-ordered trace through a CacheGroup on the discrete-event
// clock. The event queue carries the periodic machinery (metric snapshots);
// requests are dispatched in trace order at their own timestamps.
#pragma once

#include <vector>

#include "ea/expiration_age.h"
#include "group/cache_group.h"
#include "group/pipeline_config.h"
#include "sim/fault_plan.h"
#include "metrics/metrics.h"
#include "net/transport.h"
#include "obs/metric_registry.h"
#include "obs/trace_log.h"
#include "proxy/proxy_cache.h"
#include "trace/trace.h"
#include "validate/validation_report.h"

namespace eacache {

struct SimulationOptions {
  /// Period for hit-rate time-series snapshots; zero disables them.
  Duration snapshot_period = Duration::zero();

  /// Attach the invariant checker (src/validate/invariants.h) to the run:
  /// every request is audited against the paper's conservation laws and the
  /// outcome lands in SimulationResult::validation (and under "validation"
  /// in result JSON). Off by default — auditing re-queries expiration ages,
  /// which shifts obs counters (never simulation outcomes).
  bool validate = false;

  /// Declarative fault injection: proxy flushes (crash/restart) and
  /// transient peer-outage windows. See sim/fault_plan.h.
  FaultPlan faults;

  /// DEPRECATED shim for the original flush-only API: merged into
  /// `faults.flushes` by run_simulation. Prefer FaultPlan.
  struct FlushEvent {
    TimePoint at{};
    ProxyId proxy = 0;
  };
  std::vector<FlushEvent> flush_events;
};

/// One proxy's entry in a periodic observability sample.
struct ProxySeriesSample {
  double exp_age_ms = 0.0;       // windowed CacheExpAge (only if `finite`)
  bool finite = false;           // false = infinite (no contention observed)
  Bytes resident_bytes = 0;
  std::size_t resident_docs = 0;
};

/// Periodic per-proxy CacheExpAge/occupancy sample (GroupConfig::obs
/// series_points samples spread over the trace's time span).
struct ProxySeriesPoint {
  TimePoint at{};
  std::vector<ProxySeriesSample> proxies;
};

/// Wall-clock cost of one simulation, split by phase. Reported on sweep job
/// rows (NOT inside the SimulationResult JSON, which must stay a pure
/// function of the simulated world).
struct PhaseTimings {
  double sim_ms = 0.0;     // group construction + trace replay
  double report_ms = 0.0;  // end-of-run collection into SimulationResult
};

struct SimulationResult {
  GroupMetrics metrics;
  TransportStats transport;
  CoherenceStats coherence;
  PrefetchStats prefetch;

  /// Observability: snapshot of the group's metric registry (empty when
  /// GroupConfig::obs.registry is off), the request-lifecycle span ring
  /// (empty unless obs.trace_capacity > 0) and the periodic per-proxy
  /// series (empty unless obs.series_points > 0).
  MetricRegistry registry;
  TraceLog trace_log;
  std::vector<ProxySeriesPoint> proxy_series;

  /// Table 1's metric, measured over the whole run.
  ExpAge average_cache_expiration_age = ExpAge::infinite();
  std::vector<ExpAge> per_cache_expiration_age;

  /// End-of-run occupancy diagnostics.
  std::size_t total_resident_copies = 0;
  std::size_t unique_resident_documents = 0;
  double replication_factor = 0.0;

  std::vector<ProxyStats> proxy_stats;
  std::vector<MetricsSnapshot> snapshots;

  /// Event-driven pipeline counters; `pipeline.enabled` is false (and the
  /// whole struct zero) for legacy synchronous runs, which keeps their
  /// result JSON byte-identical to pre-pipeline releases.
  PipelineStats pipeline;

  /// Invariant-checker outcome; `validation.enabled` is false (and the
  /// "validation" JSON block absent) unless SimulationOptions::validate was
  /// set, preserving byte-identity of unvalidated result JSON.
  ValidationReport validation;
};

/// Run `trace` through a fresh group built from `config`. The trace must be
/// time-ordered (throws std::invalid_argument otherwise). When `timings` is
/// non-null it receives the wall-clock phase split.
[[nodiscard]] SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                              const SimulationOptions& options = {},
                                              PhaseTimings* timings = nullptr);

}  // namespace eacache
