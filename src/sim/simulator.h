// Trace-driven simulation driver.
//
// Feeds a time-ordered trace through a CacheGroup on the discrete-event
// clock. The event queue carries the periodic machinery (metric snapshots);
// requests are dispatched in trace order at their own timestamps.
#pragma once

#include "core/fault_plan.h"
#include "core/run_result.h"
#include "core/run_spec.h"
#include "group/cache_group.h"
#include "trace/trace.h"

namespace eacache {

/// DEPRECATED alias for RunSpec's per-run knobs, kept one release so
/// existing call sites compile. New code should build a RunSpec
/// (core/run_spec.h) and call `run()` below; the old `flush_events` shim
/// (deprecated since the FaultPlan release) is gone — use faults.flushes.
struct SimulationOptions {
  /// Period for hit-rate time-series snapshots; zero disables them.
  Duration snapshot_period = Duration::zero();

  /// Attach the invariant checker (src/validate/invariants.h) to the run:
  /// every request is audited against the paper's conservation laws and the
  /// outcome lands in SimulationResult::validation (and under "validation"
  /// in result JSON). Off by default — auditing re-queries expiration ages,
  /// which shifts obs counters (never simulation outcomes).
  bool validate = false;

  /// Declarative fault injection: proxy flushes (crash/restart) and
  /// transient peer-outage windows. See core/fault_plan.h.
  FaultPlan faults;
};

// ProxySeriesSample/ProxySeriesPoint, PhaseTimings and SimulationResult
// itself live in core/run_result.h — the driver-independent result schema
// shared with the daemon layer.

/// Run `trace` through a fresh group built from `config`. The trace must be
/// time-ordered (throws std::invalid_argument otherwise). When `timings` is
/// non-null it receives the wall-clock phase split.
[[nodiscard]] SimulationResult run_simulation(const Trace& trace, const GroupConfig& config,
                                              const SimulationOptions& options = {},
                                              PhaseTimings* timings = nullptr);

/// The RunSpec entry point: validates `spec` (aggregated errors) and
/// dispatches on its ExecutionPolicy — shards == 0 runs the classic
/// single-queue driver above (byte-identical to the pre-RunSpec API),
/// shards >= 1 runs the sharded conservative-lookahead engine
/// (sim/shard_engine.h).
[[nodiscard]] SimulationResult run(const Trace& trace, const RunSpec& spec,
                                   PhaseTimings* timings = nullptr);

}  // namespace eacache
