#include "sim/request_pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace eacache {

RequestPipeline::RequestPipeline(CacheGroup& group, EventQueue& queue)
    : group_(group), queue_(queue) {
  stats_.enabled = true;
  if (group_.registry_.enabled()) {
    obs_coalesced_joins_ = group_.registry_.counter("group.coalesced_joins");
    obs_icp_timeouts_ = group_.registry_.counter("group.icp.timeouts");
    obs_icp_retries_ = group_.registry_.counter("group.icp.retries");
    obs_icp_recoveries_ = group_.registry_.counter("group.icp.recoveries");
  }
}

Duration RequestPipeline::round_timeout(std::uint32_t attempt) const {
  const double scaled = static_cast<double>(cfg().icp_timeout.count()) *
                        std::pow(cfg().retry_backoff, static_cast<double>(attempt));
  return Duration{static_cast<SimClock::rep>(scaled)};
}

void RequestPipeline::start(const Request& request) {
  // Same preamble cadence as the synchronous driver: digests refresh at
  // arrival, then per-request accounting + the arrival span.
  if (group_.config().discovery == DiscoveryMode::kDigest) {
    group_.refresh_digests(request.at);
  }
  ProxyCache& requester = *group_.proxies_[group_.home_proxy(request.user)];
  const std::uint64_t rid = group_.begin_request(requester, request);

  auto ctx = std::make_unique<Context>();
  ctx->request = request;
  ctx->rid = rid;
  ctx->proxy = requester.id();
  ctx->arrival = request.at;
  ctx->spent = latency().local_lookup;

  ++stats_.started;
  ++in_flight_;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);

  Context* raw = ctx.get();
  open_.emplace(rid, std::move(ctx));
  queue_.schedule_at(request.at + latency().local_lookup,
                     [this, rid](TimePoint t) {
                       const auto it = open_.find(rid);
                       if (it != open_.end()) on_lookup(it->second.get(), t);
                     });
  (void)raw;
}

void RequestPipeline::on_lookup(Context* ctx, TimePoint t) {
  group_.current_request_ = ctx->rid;
  ProxyCache& requester = *group_.proxies_[ctx->proxy];
  const Request& request = ctx->request;

  if (group_.config().routing == RoutingMode::kHashPartition) {
    finish(ctx, t, group_.resolve_hash_partition(requester, request, t));
    return;
  }

  // A speculative copy stops being speculative the moment it is demanded.
  ctx->was_prefetched = group_.config().prefetch.enabled &&
                        group_.pending_prefetch_[ctx->proxy].erase(request.document) > 0;

  const CacheGroup::LocalLookup local = group_.local_lookup(requester, request, t);
  switch (local.state) {
    case CacheGroup::LocalState::kFreshHit:
      finish(ctx, t,
             {RequestOutcome::kLocalHit, local.size, group_.config().latency.local_hit});
      return;
    case CacheGroup::LocalState::kValidatedHit:
      finish(ctx, t,
             {RequestOutcome::kLocalHit, local.size,
              group_.config().latency.local_hit + group_.config().coherence.validation_rtt});
      return;
    case CacheGroup::LocalState::kChanged: {
      const Document document = group_.document_from(request, t);
      group_.note_origin_fetch(ctx->proxy, document, t, /*speculative=*/false);
      if (!requester.store().contains(document.id)) {
        requester.cache_after_origin_fetch(document, t);
      }
      finish(ctx, t, {RequestOutcome::kMiss, document.size, group_.config().latency.miss});
      return;
    }
    case CacheGroup::LocalState::kMiss:
      break;
  }

  // Collapsed forwarding: join an in-flight fetch for the same document at
  // this proxy, or become the leader later misses can join.
  if (cfg().coalesce) {
    const auto key = std::make_pair(ctx->proxy, request.document);
    const auto pending = pending_.find(key);
    if (pending != pending_.end()) {
      join(pending->second, ctx, t);
      return;
    }
    pending_.emplace(key, ctx);
  }

  if (group_.config().discovery == DiscoveryMode::kDigest) {
    // Digest lookups are local (no wire wait): discovery settles now.
    ctx->hits = group_.digest_candidates(ctx->proxy, request.document);
    close_discovery(ctx, t);
    return;
  }

  // ICP: open the discovery window. The round trip is simulated for real,
  // so it joins the spent budget exactly once.
  ctx->spent += latency().icp_rtt;
  issue_probe_round(ctx, group_.probe_targets(ctx->proxy), t);
}

void RequestPipeline::issue_probe_round(Context* ctx, const std::vector<ProxyId>& targets,
                                        TimePoint t) {
  if (targets.empty()) {
    close_discovery(ctx, t);
    return;
  }
  group_.current_request_ = ctx->rid;
  ProxyCache& requester = *group_.proxies_[ctx->proxy];
  ctx->expected_replies = targets.size();
  ctx->answered = 0;
  ctx->lost_targets.clear();

  const std::uint64_t rid = ctx->rid;
  for (const ProxyId target : targets) {
    const CacheGroup::ProbeResult result =
        group_.probe_peer(requester, target, ctx->request, t);
    if (result == CacheGroup::ProbeResult::kLost) {
      // A lost query or reply: the requester never hears back and can only
      // discover the silence by timeout.
      ctx->lost_targets.push_back(target);
      continue;
    }
    const bool hit = result == CacheGroup::ProbeResult::kHit;
    queue_.schedule_at(t + latency().icp_rtt, [this, rid, target, hit](TimePoint rt) {
      const auto it = open_.find(rid);
      if (it != open_.end()) on_reply(it->second.get(), target, hit, rt);
    });
  }

  ctx->timeout_event = queue_.schedule_at(t + round_timeout(ctx->attempt),
                                          [this, rid](TimePoint tt) {
                                            const auto it = open_.find(rid);
                                            if (it != open_.end()) {
                                              on_timeout(it->second.get(), tt);
                                            }
                                          });
}

void RequestPipeline::on_reply(Context* ctx, ProxyId target, bool hit, TimePoint t) {
  ++ctx->answered;
  if (hit) {
    ctx->hits.push_back(target);
    if (ctx->attempt > 0) {
      // A retry round won a positive reply the classic lose-once-give-up
      // flow would have missed.
      ++stats_.icp_recoveries;
      obs_icp_recoveries_.inc();
    }
  }
  if (ctx->answered == ctx->expected_replies) {
    queue_.cancel(ctx->timeout_event);
    ctx->timeout_event = kNoEvent;
    close_discovery(ctx, t);
  }
}

void RequestPipeline::on_timeout(Context* ctx, TimePoint t) {
  ctx->timeout_event = kNoEvent;
  ++stats_.icp_timeouts;
  obs_icp_timeouts_.inc();
  if (group_.trace_log_.enabled()) {
    SpanEvent event;
    event.request = ctx->rid;
    event.at_ms = CacheGroup::sim_ms(t);
    event.document = ctx->request.document;
    event.proxy = ctx->proxy;
    event.kind = SpanKind::kIcpTimeout;
    event.value =
        static_cast<std::int64_t>(ctx->expected_replies - ctx->answered);
    group_.trace_log_.record(event);
  }

  if (ctx->attempt < cfg().icp_retries && !ctx->lost_targets.empty()) {
    ++ctx->attempt;
    ++stats_.icp_retries;
    obs_icp_retries_.inc();
    if (group_.trace_log_.enabled()) {
      SpanEvent event;
      event.request = ctx->rid;
      event.at_ms = CacheGroup::sim_ms(t);
      event.document = ctx->request.document;
      event.proxy = ctx->proxy;
      event.kind = SpanKind::kIcpRetry;
      event.value = static_cast<std::int64_t>(ctx->attempt);
      group_.trace_log_.record(event);
    }
    // Re-probe only the peers that stayed silent; fresh loss draws, longer
    // timeout (retry_backoff), and any reply they send now still counts.
    const std::vector<ProxyId> targets = std::move(ctx->lost_targets);
    issue_probe_round(ctx, targets, t);
    return;
  }
  close_discovery(ctx, t);
}

void RequestPipeline::close_discovery(Context* ctx, TimePoint t) {
  group_.current_request_ = ctx->rid;
  ProxyCache& requester = *group_.proxies_[ctx->proxy];
  group_.sort_by_ring_distance(ctx->hits, ctx->proxy);
  finish(ctx, t, group_.try_candidates(requester, ctx->request, ctx->hits, t));
}

void RequestPipeline::finish(Context* ctx, TimePoint t_resolve, CacheGroup::Resolution res) {
  // The resolution's latency is the legacy charge; whatever part of it the
  // pipeline already simulated (ctx->spent) must not be paid twice. Any
  // time beyond the legacy charge — timeout windows — is already baked
  // into t_resolve, so it inflates the measured latency naturally.
  const Duration remaining =
      res.latency > ctx->spent ? res.latency - ctx->spent : Duration::zero();
  const std::uint64_t rid = ctx->rid;
  queue_.schedule_at(t_resolve + remaining, [this, rid, res](TimePoint tc) {
    const auto it = open_.find(rid);
    if (it != open_.end()) on_complete(it->second.get(), tc, res);
  });
}

void RequestPipeline::on_complete(Context* ctx, TimePoint tc, CacheGroup::Resolution res) {
  // Close the coalescing window first: requests arriving after this instant
  // start a fetch of their own.
  if (cfg().coalesce) {
    const auto key = std::make_pair(ctx->proxy, ctx->request.document);
    const auto pending = pending_.find(key);
    if (pending != pending_.end() && pending->second == ctx) pending_.erase(pending);
  }

  group_.metrics_.record(res.outcome, res.bytes, tc - ctx->arrival);
  if (group_.config().prefetch.enabled) {
    if (ctx->was_prefetched && res.outcome == RequestOutcome::kLocalHit) {
      ++group_.prefetch_stats_.useful;
    }
    group_.current_request_ = ctx->rid;
    group_.learn_and_prefetch(*group_.proxies_[ctx->proxy], ctx->request, tc);
  }
  group_.record_complete_span(ctx->proxy, ctx->request.document, ctx->rid, tc, res.outcome);
  ++stats_.completed;
  --in_flight_;

  // Joiners complete with the leader: same outcome class and bytes, their
  // own measured latency. (They never learn/prefetch — the leader already
  // recorded this document's transition at this proxy.)
  for (const auto& joiner : ctx->joiners) {
    group_.metrics_.record(res.outcome, res.bytes, tc - joiner->arrival);
    group_.record_complete_span(joiner->proxy, joiner->request.document, joiner->rid, tc,
                                res.outcome);
    ++stats_.completed;
    --in_flight_;
  }

  open_.erase(ctx->rid);  // destroys ctx and its joiners
}

void RequestPipeline::join(Context* leader, Context* joiner, TimePoint t) {
  ++stats_.coalesced_joins;
  obs_coalesced_joins_.inc();
  if (group_.trace_log_.enabled()) {
    SpanEvent event;
    event.request = joiner->rid;
    event.at_ms = CacheGroup::sim_ms(t);
    event.document = joiner->request.document;
    event.proxy = joiner->proxy;
    event.kind = SpanKind::kCoalescedJoin;
    event.value = static_cast<std::int64_t>(leader->rid);
    group_.trace_log_.record(event);
  }
  const auto it = open_.find(joiner->rid);
  leader->joiners.push_back(std::move(it->second));
  open_.erase(it);
}

}  // namespace eacache
