#include "sim/shard_messages.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace eacache {

namespace {

// Fixed wire layout, little-endian:
//   kind:u8 request_index:u64 hop:u32 from:u32 to:u32 deliver_at:i64
//   document:u64 size:u64 status:u8 found:u8 source:u8 has_age:u8
//   [age_millis:f64 when has_age]
constexpr std::size_t kFixedSize = 1 + 8 + 4 + 4 + 4 + 8 + 8 + 8 + 1 + 1 + 1 + 1;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = sizeof(T); i-- > 0;) out.push_back(raw[i]);
  } else {
    out.insert(out.end(), raw, raw + sizeof(T));
  }
}

template <typename T>
T take(const std::vector<std::uint8_t>& wire, std::size_t& cursor) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (cursor + sizeof(T) > wire.size()) {
    throw std::invalid_argument("decode_shard_message: truncated buffer");
  }
  std::uint8_t raw[sizeof(T)];
  if constexpr (std::endian::native == std::endian::big) {
    for (std::size_t i = 0; i < sizeof(T); ++i) raw[sizeof(T) - 1 - i] = wire[cursor + i];
  } else {
    std::memcpy(raw, wire.data() + cursor, sizeof(T));
  }
  cursor += sizeof(T);
  T value;
  std::memcpy(&value, raw, sizeof(T));
  return value;
}

}  // namespace

std::vector<std::uint8_t> encode_shard_message(const ShardMessage& message) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kFixedSize + 8);
  put<std::uint8_t>(wire, static_cast<std::uint8_t>(message.kind));
  put<std::uint64_t>(wire, message.request_index);
  put<std::uint32_t>(wire, message.hop);
  put<std::uint32_t>(wire, message.from);
  put<std::uint32_t>(wire, message.to);
  put<std::int64_t>(wire, message.deliver_at.time_since_epoch().count());
  put<std::uint64_t>(wire, message.document);
  put<std::uint64_t>(wire, message.size);
  put<std::uint8_t>(wire, static_cast<std::uint8_t>(message.status));
  put<std::uint8_t>(wire, message.found ? 1 : 0);
  put<std::uint8_t>(wire, message.source == ResponseSource::kOrigin ? 1 : 0);
  put<std::uint8_t>(wire, message.age.has_value() ? 1 : 0);
  if (message.age.has_value()) {
    // IEEE double survives the round trip bit-exactly, including +inf for
    // the "no contention observed" age.
    put<double>(wire, message.age->millis());
  }
  return wire;
}

ShardMessage decode_shard_message(const std::vector<std::uint8_t>& wire) {
  std::size_t cursor = 0;
  ShardMessage message;
  const auto kind = take<std::uint8_t>(wire, cursor);
  if (kind > static_cast<std::uint8_t>(ShardMessageKind::kParentBody)) {
    throw std::invalid_argument("decode_shard_message: bad kind");
  }
  message.kind = static_cast<ShardMessageKind>(kind);
  message.request_index = take<std::uint64_t>(wire, cursor);
  message.hop = take<std::uint32_t>(wire, cursor);
  message.from = take<std::uint32_t>(wire, cursor);
  message.to = take<std::uint32_t>(wire, cursor);
  message.deliver_at = TimePoint{Duration{take<std::int64_t>(wire, cursor)}};
  message.document = take<std::uint64_t>(wire, cursor);
  message.size = take<std::uint64_t>(wire, cursor);
  const auto status = take<std::uint8_t>(wire, cursor);
  if (status > static_cast<std::uint8_t>(ShardProbeStatus::kDown)) {
    throw std::invalid_argument("decode_shard_message: bad status");
  }
  message.status = static_cast<ShardProbeStatus>(status);
  message.found = take<std::uint8_t>(wire, cursor) != 0;
  message.source =
      take<std::uint8_t>(wire, cursor) != 0 ? ResponseSource::kOrigin : ResponseSource::kCache;
  if (take<std::uint8_t>(wire, cursor) != 0) {
    message.age = ExpAge::from_millis(take<double>(wire, cursor));
  }
  if (cursor != wire.size()) {
    throw std::invalid_argument("decode_shard_message: trailing bytes");
  }
  return message;
}

}  // namespace eacache
