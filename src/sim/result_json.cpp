#include "sim/result_json.h"

#include <ostream>
#include <sstream>

#include "ea/placement.h"
#include "metrics/json.h"
#include "storage/replacement_policy.h"

namespace eacache {

void append_sweep_run(JsonWriter& json, const SweepRunResult& run) {
  json.begin_object();
  json.field("label", run.label);
  json.field("wall_ms", run.wall_ms);

  // Per-phase wall-clock: lives on the job row, never inside "result".
  json.key("timings").begin_object();
  json.field("trace_load_ms", run.trace_load_ms);
  json.field("sim_ms", run.timings.sim_ms);
  json.field("report_ms", run.timings.report_ms);
  json.end_object();

  json.key("config").begin_object();
  json.field("num_proxies", static_cast<std::uint64_t>(run.config.num_proxies));
  json.field("aggregate_capacity", run.config.aggregate_capacity);
  json.field("placement", to_string(run.config.placement));
  json.field("replacement", to_string(run.config.replacement));
  json.field("topology",
             run.config.topology == TopologyKind::kHierarchical ? "hierarchical"
                                                                : "distributed");
  json.field("discovery",
             run.config.discovery == DiscoveryMode::kDigest ? "digest" : "icp");
  json.field("routing",
             run.config.routing == RoutingMode::kHashPartition ? "hash-partition"
                                                               : "cooperative");
  // Workload-DSL provenance echo; omitted for non-DSL traces so legacy rows
  // stay byte-stable (DESIGN.md §11, §15).
  if (!run.workload.empty()) json.field("workload", run.workload);
  json.key("obs").begin_object();
  json.field("registry", run.config.obs.registry);
  json.field("trace_capacity", static_cast<std::uint64_t>(run.config.obs.trace_capacity));
  json.field("series_points", static_cast<std::uint64_t>(run.config.obs.series_points));
  json.end_object();
  // Pipeline knobs, only for event-driven runs (legacy rows byte-stable).
  if (run.config.pipeline.event_driven) {
    json.key("pipeline").begin_object();
    json.field("event_driven", true);
    json.field("icp_timeout_ms",
               static_cast<std::int64_t>(run.config.pipeline.icp_timeout.count()));
    json.field("icp_retries", static_cast<std::uint64_t>(run.config.pipeline.icp_retries));
    json.field("retry_backoff", run.config.pipeline.retry_backoff);
    json.field("coalesce", run.config.pipeline.coalesce);
    json.end_object();
  }
  json.end_object();

  json.key("result");
  append_simulation_result(json, run.result);
  json.end_object();
}

std::string sweep_run_to_json(const SweepRunResult& run) {
  std::ostringstream out;
  JsonWriter json(out);
  append_sweep_run(json, run);
  return out.str();
}

std::function<void(const SweepRunResult&)> make_json_row_sink(std::ostream& out) {
  return [&out](const SweepRunResult& run) { out << sweep_run_to_json(run) << '\n'; };
}

}  // namespace eacache
