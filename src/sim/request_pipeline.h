// RequestPipeline: the event-driven request driver.
//
// CacheGroup::serve() resolves one request start-to-finish in a single call
// and charges the paper's per-outcome latency aggregates. This driver
// instead turns each request into a staged in-flight state machine
//
//   Arrival -> LocalLookup -> Discovery -> {RemoteFetch | ParentChain |
//   OriginFetch} -> Placement -> Complete
//
// whose transitions are scheduled on the discrete-event queue at the
// LatencyModel's stage delays, so requests genuinely OVERLAP in simulated
// time. It invokes exactly the same private CacheGroup stage helpers as the
// synchronous driver (the cache/transport/span mutations are shared code);
// what changes is when they run and how latency is obtained: MEASURED as
// completion minus arrival rather than charged from the aggregate table.
//
// Semantics only this driver has:
//  * ICP discovery is a real wait: probes whose query or reply was lost
//    (or whose target is in an injected outage window) simply never answer,
//    and the requester discovers that by TIMEOUT (PipelineConfig::
//    icp_timeout), inflating that request's latency.
//  * Bounded retry: after a timeout the requester may re-probe the silent
//    peers (icp_retries rounds, timeout growing by retry_backoff each
//    round). A positive reply won by a retry is a RECOVERY — a remote hit
//    the classic lose-once-give-up flow would have turned into a duplicate
//    origin fetch.
//  * Collapsed forwarding (coalesce): while a proxy has a fetch in flight
//    for a document, later local misses for the same document at that proxy
//    join the in-flight request instead of probing/fetching again; joiners
//    complete with the leader and inherit its outcome class and bytes.
//
// With timeouts/retries/coalescing idle (loss 0, no outages, coalesce off)
// and requests spaced far enough apart not to overlap, completion times
// reduce exactly to the legacy aggregates — the stage decomposition in
// LatencyModel guarantees it, and tests/sim/pipeline_test.cpp asserts it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "event/event_queue.h"
#include "group/cache_group.h"
#include "group/pipeline_config.h"

namespace eacache {

class RequestPipeline {
 public:
  /// Both references must outlive the pipeline. Registers the pipeline-only
  /// registry counters (group.coalesced_joins, group.icp.*) when the
  /// group's registry is enabled.
  RequestPipeline(CacheGroup& group, EventQueue& queue);

  RequestPipeline(const RequestPipeline&) = delete;
  RequestPipeline& operator=(const RequestPipeline&) = delete;

  /// Admit one trace request. Must be called with the queue's clock at (or
  /// before) request.at; the request's first transition is scheduled at
  /// request.at + LatencyModel::local_lookup.
  void start(const Request& request);

  /// Requests admitted but not yet completed. The simulator drains the
  /// queue until this reaches zero.
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }

 private:
  /// One in-flight request's mutable state.
  struct Context {
    Request request;
    std::uint64_t rid = 0;      // trace-log request id
    ProxyId proxy = 0;          // home proxy
    TimePoint arrival{};
    /// Simulated time already spent in stages that the legacy aggregate
    /// also contains (local lookup, one ICP round trip). The completion
    /// event lands at t_resolve + (legacy_latency - spent), so a request
    /// with no timeouts measures exactly the legacy latency.
    Duration spent = Duration::zero();
    bool was_prefetched = false;

    // ---- Discovery window (ICP mode) ----
    std::uint32_t attempt = 0;           // 0 = first round, 1.. = retries
    std::size_t expected_replies = 0;    // probes issued this round
    std::size_t answered = 0;            // replies received this round
    std::vector<ProxyId> hits;           // positive repliers, all rounds
    std::vector<ProxyId> lost_targets;   // silent peers this round
    EventId timeout_event = kNoEvent;

    // ---- Coalescing ----
    std::vector<std::unique_ptr<Context>> joiners;  // folded-in requests
  };

  void on_lookup(Context* ctx, TimePoint t);
  /// Issue one probe round to `targets`; schedules reply events for
  /// answered probes and the round's timeout.
  void issue_probe_round(Context* ctx, const std::vector<ProxyId>& targets, TimePoint t);
  void on_reply(Context* ctx, ProxyId target, bool hit, TimePoint t);
  void on_timeout(Context* ctx, TimePoint t);
  /// Discovery settled (all replies in, or timed out past the last retry):
  /// fetch through the hits, or resolve the group miss.
  void close_discovery(Context* ctx, TimePoint t);
  /// Schedule the completion event from the resolution's legacy latency.
  void finish(Context* ctx, TimePoint t_resolve, CacheGroup::Resolution res);
  void on_complete(Context* ctx, TimePoint tc, CacheGroup::Resolution res);
  /// Fold a joining request into the leader's context (collapsed
  /// forwarding); the joiner emits no further events of its own.
  void join(Context* leader, Context* joiner, TimePoint t);

  [[nodiscard]] const PipelineConfig& cfg() const { return group_.config().pipeline; }
  [[nodiscard]] const LatencyModel& latency() const { return group_.config().latency; }
  /// This round's timeout: icp_timeout * retry_backoff^attempt.
  [[nodiscard]] Duration round_timeout(std::uint32_t attempt) const;

  CacheGroup& group_;
  EventQueue& queue_;
  PipelineStats stats_;
  std::uint64_t in_flight_ = 0;

  /// Open requests by request id. Every scheduled event captures a request
  /// id and re-resolves its context here, so context lifetime is owned in
  /// exactly one place; joiner contexts move into their leader's `joiners`.
  std::map<std::uint64_t, std::unique_ptr<Context>> open_;

  /// Collapsed-forwarding table: (proxy, document) -> leader context, alive
  /// from the leader's local miss until its completion event (covering the
  /// transfer window, so joins during the fetch still collapse).
  std::map<std::pair<ProxyId, DocumentId>, Context*> pending_;

  // Pipeline-only registry counters (null handles when the registry is off).
  MetricRegistry::Counter obs_coalesced_joins_;
  MetricRegistry::Counter obs_icp_timeouts_;
  MetricRegistry::Counter obs_icp_retries_;
  MetricRegistry::Counter obs_icp_recoveries_;
};

}  // namespace eacache
