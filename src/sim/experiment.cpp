#include "sim/experiment.h"

#include <array>
#include <string>

#include "ea/placement.h"

namespace eacache {

std::span<const Bytes> paper_capacity_ladder() {
  static constexpr std::array<Bytes, 5> kLadder{100 * kKiB, 1 * kMiB, 10 * kMiB, 100 * kMiB,
                                                1 * kGiB};
  return kLadder;
}

namespace {

std::string scheme_label(PlacementKind placement, const std::string& point) {
  return std::string(to_string(placement)) + "@" + point;
}

}  // namespace

std::vector<SchemeComparison> compare_schemes_over_capacities(
    const Trace& trace, GroupConfig base, std::span<const Bytes> capacities,
    const SweepOptions& sweep) {
  SweepRunner runner(sweep);
  const TraceRef shared = borrow_trace(trace);
  for (const Bytes capacity : capacities) {
    base.aggregate_capacity = capacity;
    base.placement = PlacementKind::kAdHoc;
    runner.add(scheme_label(base.placement, format_bytes(capacity)), base, shared);
    base.placement = PlacementKind::kEa;
    runner.add(scheme_label(base.placement, format_bytes(capacity)), base, shared);
  }
  const std::vector<SweepRunResult> runs = runner.run();

  std::vector<SchemeComparison> results;
  results.reserve(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    SchemeComparison point;
    point.aggregate_capacity = capacities[i];
    point.adhoc = runs[2 * i].result;
    point.ea = runs[2 * i + 1].result;
    results.push_back(std::move(point));
  }
  return results;
}

std::vector<GroupSizePoint> compare_schemes_over_group_sizes(
    const Trace& trace, GroupConfig base, std::span<const std::size_t> group_sizes,
    const SweepOptions& sweep) {
  SweepRunner runner(sweep);
  const TraceRef shared = borrow_trace(trace);
  for (const std::size_t n : group_sizes) {
    base.num_proxies = n;
    base.placement = PlacementKind::kAdHoc;
    runner.add(scheme_label(base.placement, std::to_string(n) + "-caches"), base, shared);
    base.placement = PlacementKind::kEa;
    runner.add(scheme_label(base.placement, std::to_string(n) + "-caches"), base, shared);
  }
  const std::vector<SweepRunResult> runs = runner.run();

  std::vector<GroupSizePoint> results;
  results.reserve(group_sizes.size());
  for (std::size_t i = 0; i < group_sizes.size(); ++i) {
    GroupSizePoint point;
    point.num_proxies = group_sizes[i];
    point.adhoc = runs[2 * i].result;
    point.ea = runs[2 * i + 1].result;
    results.push_back(std::move(point));
  }
  return results;
}

}  // namespace eacache
