#include "sim/experiment.h"

#include <array>

namespace eacache {

std::span<const Bytes> paper_capacity_ladder() {
  static constexpr std::array<Bytes, 5> kLadder{100 * kKiB, 1 * kMiB, 10 * kMiB, 100 * kMiB,
                                                1 * kGiB};
  return kLadder;
}

std::vector<SchemeComparison> compare_schemes_over_capacities(
    const Trace& trace, GroupConfig base, std::span<const Bytes> capacities) {
  std::vector<SchemeComparison> results;
  results.reserve(capacities.size());
  for (const Bytes capacity : capacities) {
    SchemeComparison point;
    point.aggregate_capacity = capacity;
    base.aggregate_capacity = capacity;
    base.placement = PlacementKind::kAdHoc;
    point.adhoc = run_simulation(trace, base);
    base.placement = PlacementKind::kEa;
    point.ea = run_simulation(trace, base);
    results.push_back(std::move(point));
  }
  return results;
}

std::vector<GroupSizePoint> compare_schemes_over_group_sizes(
    const Trace& trace, GroupConfig base, std::span<const std::size_t> group_sizes) {
  std::vector<GroupSizePoint> results;
  results.reserve(group_sizes.size());
  for (const std::size_t n : group_sizes) {
    GroupSizePoint point;
    point.num_proxies = n;
    base.num_proxies = n;
    base.placement = PlacementKind::kAdHoc;
    point.adhoc = run_simulation(trace, base);
    base.placement = PlacementKind::kEa;
    point.ea = run_simulation(trace, base);
    results.push_back(std::move(point));
  }
  return results;
}

}  // namespace eacache
