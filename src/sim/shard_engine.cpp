#include "sim/shard_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/wall_timer.h"
#include "ea/placement.h"
#include "event/event_queue.h"
#include "group/cache_group.h"
#include "group/partition.h"
#include "sim/shard_messages.h"
#include "storage/replacement_policy.h"

namespace eacache {

namespace {

/// One shard: an EventQueue, the proxies the partition assigned here, and
/// private accounting merged only after the run. The mailbox is the ONLY
/// state other threads touch.
struct Shard {
  // ---- single-owner state (the shard's worker thread) -------------------
  std::size_t index = 0;
  EventQueue queue;
  /// Indexed by GLOBAL proxy id; null for proxies on other shards.
  std::vector<std::unique_ptr<ProxyCache>> proxies;
  MetricRegistry registry;
  Transport transport;
  GroupMetrics metrics;

  /// Trace indices whose home proxy lives here, ascending (= time order).
  std::vector<std::uint64_t> admissions;
  std::size_t next_admission = 0;

  /// In-flight requests admitted on this shard, keyed by trace index.
  struct RequestCtx {
    Request request;
    ProxyId home = 0;
    std::size_t awaiting_replies = 0;
    std::vector<ProxyId> candidates;
    std::size_t next_candidate = 0;
    Duration penalty = Duration::zero();
  };
  std::unordered_map<std::uint64_t, RequestCtx> contexts;

  /// Parent-chain forwarding state: which child a node must answer once the
  /// body flows back down. Keyed by (trace index, node id).
  std::unordered_map<std::uint64_t, ProxyId> parent_pending;

  /// Messages produced this window, bucketed by destination shard; moved
  /// into the targets' mailboxes at the barrier.
  std::vector<std::vector<ShardMessage>> outbox;

  /// Periodic observability samples: (series index, proxy, sample).
  struct SeriesRecord {
    std::size_t index = 0;
    TimePoint at{};
    ProxyId proxy = 0;
    ProxySeriesSample sample;
  };
  std::vector<SeriesRecord> series;

  // Group-wide counters (this shard's share; registries merge by name).
  MetricRegistry::Counter obs_requests;
  MetricRegistry::Counter obs_icp_queries;
  MetricRegistry::Counter obs_icp_replies;
  MetricRegistry::Counter obs_icp_losses;
  MetricRegistry::Counter obs_sibling_fetches;
  MetricRegistry::Counter obs_parent_fetches;
  MetricRegistry::Counter obs_origin_fetches;
  MetricRegistry::HistogramHandle obs_request_bytes;

  // ---- shared state (any thread, at barriers) ---------------------------
  Mutex mailbox_mutex;
  /// Messages addressed to this shard, not yet injected.
  std::vector<ShardMessage> mailbox EACACHE_GUARDED_BY(mailbox_mutex);
  /// This shard's earliest purely-local pending work (queue + admissions),
  /// published just before arriving at the barrier.
  std::optional<TimePoint> next_local EACACHE_GUARDED_BY(mailbox_mutex);

  explicit Shard(bool registry_on) : registry(registry_on) {}

  [[nodiscard]] ProxyCache& proxy(ProxyId id) { return *proxies[id]; }
};

class ShardEngine {
 public:
  ShardEngine(const Trace& trace, const RunSpec& spec)
      : trace_(trace),
        spec_(spec),
        topology_(topology_from(spec.group)),
        partition_(partition_topology(topology_, spec.exec.shards)),
        placement_(spec.group.placement_override
                       ? spec.group.placement_override
                       : std::shared_ptr<const PlacementPolicy>(make_placement(
                             spec.group.placement, spec.group.ea_hysteresis))),
        lookahead_(spec.effective_lookahead()) {
    const LatencyModel& latency = spec.group.latency;
    d_probe_ = latency.icp_rtt / 2;
    d_reply_ = latency.icp_rtt - d_probe_;
    d_body_ = std::max(latency.remote_transfer() - d_probe_, msec(1));
    d_origin_ = std::max(latency.origin_transfer() - d_probe_, msec(1));
    build_shards();
  }

  SimulationResult run(PhaseTimings* timings) {
    const WallTimer sim_timer;
    {
      MutexLock lock(round_mutex_);
      for (auto& shard : shards_) publish_next_local(*shard);
      compute_next_window();
    }
    if (!is_done()) {
      if (shards_.size() == 1) {
        worker(0);
      } else {
        std::vector<std::thread> workers;
        workers.reserve(shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          workers.emplace_back([this, s] { worker(s); });
        }
        for (std::thread& w : workers) w.join();
      }
    }
    rethrow_failure();
    if (timings != nullptr) timings->sim_ms = sim_timer.elapsed_ms();

    const WallTimer report_timer;
    SimulationResult result = collect();
    if (timings != nullptr) timings->report_ms = report_timer.elapsed_ms();
    return result;
  }

 private:
  // ---- construction -----------------------------------------------------

  void build_shards() {
    const GroupConfig& config = spec_.group;
    const std::size_t total = topology_.num_proxies();
    const std::vector<Bytes> budgets = cache_budgets(config, total);

    shards_.reserve(partition_.shards);
    for (std::size_t s = 0; s < partition_.shards; ++s) {
      auto shard = std::make_unique<Shard>(config.obs.registry);
      shard->index = s;
      shard->proxies.resize(total);
      for (const ProxyId p : partition_.members[s]) {
        shard->proxies[p] = std::make_unique<ProxyCache>(
            p, budgets[p], make_policy(config.replacement), config.window, placement_.get(),
            /*digest_config=*/nullptr, &shard->registry);
      }
      shard->transport.bind_registry(&shard->registry, total);
      if (shard->registry.enabled()) {
        shard->obs_requests = shard->registry.counter("group.requests");
        shard->obs_icp_queries = shard->registry.counter("group.icp.queries");
        shard->obs_icp_replies = shard->registry.counter("group.icp.replies");
        shard->obs_icp_losses = shard->registry.counter("group.icp.losses");
        shard->obs_sibling_fetches = shard->registry.counter("group.sibling_fetches");
        shard->obs_parent_fetches = shard->registry.counter("group.parent_fetches");
        shard->obs_origin_fetches = shard->registry.counter("group.origin_fetches");
        shard->obs_request_bytes = shard->registry.histogram(
            "group.request_bytes", 0.0, static_cast<double>(kMiB), 64);
      }
      shard->outbox.resize(partition_.shards);
      shards_.push_back(std::move(shard));
    }

    // Admissions: each request enters at its user's home proxy's shard.
    for (std::uint64_t i = 0; i < trace_.requests.size(); ++i) {
      const ProxyId home = home_proxy_in(topology_, trace_.requests[i].user);
      shards_[partition_.shard_of[home]]->admissions.push_back(i);
    }

    // Pre-scheduled events get the LOWEST sequence numbers, so at equal
    // timestamps they fire before any injected message or admission — the
    // same relative order under every shard count. Series first, then
    // flushes, mirroring the classic driver's scheduling order.
    if (config.obs.series_points > 0 && !trace_.empty()) {
      const TimePoint front = trace_.requests.front().at;
      const TimePoint back = trace_.requests.back().at;
      const Duration period = std::max(
          msec(1), (back - front) / static_cast<SimClock::rep>(config.obs.series_points));
      for (auto& shard : shards_) {
        Shard* raw = shard.get();
        std::size_t index = 0;
        for (TimePoint t = front + period; t <= back; t += period, ++index) {
          shard->queue.schedule_at(t, [this, raw, index](TimePoint at) {
            sample_series(*raw, index, at);
          });
        }
      }
    }
    for (const FaultPlan::Flush& flush : spec_.faults.flushes) {
      Shard* shard = shards_[partition_.shard_of[flush.proxy]].get();
      shard->queue.schedule_at(flush.at, [shard, proxy = flush.proxy](TimePoint at) {
        shard->proxy(proxy).flush(at);
      });
    }
  }

  // ---- window loop ------------------------------------------------------

  void worker(std::size_t s) {
    Shard& shard = *shards_[s];
    while (true) {
      TimePoint window_start;
      {
        MutexLock lock(round_mutex_);
        if (done_) return;
        window_start = window_start_;
      }
      try {
        process_window(shard, window_start);
        flush_outboxes(shard);
        {
          MutexLock lock(shard.mailbox_mutex);
          publish_next_local_locked(shard);
        }
      } catch (...) {
        MutexLock lock(round_mutex_);
        if (!failure_) failure_ = std::current_exception();
      }
      barrier_arrive();
    }
  }

  void process_window(Shard& shard, TimePoint window_start) {
    const TimePoint window_end = window_start + lookahead_;

    // Inject every due mailbox message in canonical order: arrival order
    // (thread timing) is erased, which is what keeps the schedule
    // identical under every shard count.
    std::vector<ShardMessage> due;
    {
      MutexLock lock(shard.mailbox_mutex);
      std::vector<ShardMessage> keep;
      for (ShardMessage& message : shard.mailbox) {
        (message.deliver_at < window_end ? due : keep).push_back(std::move(message));
      }
      shard.mailbox.swap(keep);
    }
    std::sort(due.begin(), due.end(), ShardMessageOrder{});
    for (ShardMessage& message : due) {
      const TimePoint at = message.deliver_at;
      shard.queue.schedule_at(at, [this, &shard, m = std::move(message)](TimePoint now) {
        deliver(shard, m, now);
      });
    }

    // Then this window's admissions, in trace order.
    while (shard.next_admission < shard.admissions.size()) {
      const std::uint64_t index = shard.admissions[shard.next_admission];
      const Request& request = trace_.requests[index];
      if (request.at >= window_end) break;
      shard.queue.schedule_at(request.at, [this, &shard, index](TimePoint now) {
        admit(shard, index, now);
      });
      ++shard.next_admission;
    }

    // run_until is inclusive, so stop one tick short of the next window.
    shard.queue.run_until(window_end - msec(1));
  }

  void flush_outboxes(Shard& shard) {
    for (std::size_t t = 0; t < shards_.size(); ++t) {
      std::vector<ShardMessage>& batch = shard.outbox[t];
      if (batch.empty()) continue;
      Shard& target = *shards_[t];
      MutexLock lock(target.mailbox_mutex);
      target.mailbox.insert(target.mailbox.end(), std::make_move_iterator(batch.begin()),
                            std::make_move_iterator(batch.end()));
      batch.clear();
    }
  }

  void publish_next_local(Shard& shard) {
    MutexLock lock(shard.mailbox_mutex);
    publish_next_local_locked(shard);
  }

  void publish_next_local_locked(Shard& shard) EACACHE_REQUIRES(shard.mailbox_mutex) {
    std::optional<TimePoint> next = shard.queue.next_time();
    if (shard.next_admission < shard.admissions.size()) {
      const TimePoint admission =
          trace_.requests[shard.admissions[shard.next_admission]].at;
      next = next.has_value() ? std::min(*next, admission) : admission;
    }
    shard.next_local = next;
  }

  void barrier_arrive() {
    MutexLock lock(round_mutex_);
    if (++waiting_ == shards_.size()) {
      waiting_ = 0;
      compute_next_window();
      ++generation_;
      round_cv_.notify_all();
    } else {
      const std::uint64_t generation = generation_;
      while (generation_ == generation) round_cv_.wait(round_mutex_);
    }
  }

  /// Last barrier arriver: the next window starts at the global earliest
  /// pending instant, rounded down to a multiple of the lookahead. No
  /// pending work anywhere (or a worker failure) ends the run.
  void compute_next_window() EACACHE_REQUIRES(round_mutex_) {
    if (failure_) {
      done_ = true;
      return;
    }
    std::optional<TimePoint> global;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mailbox_mutex);
      if (shard->next_local.has_value()) {
        global = global.has_value() ? std::min(*global, *shard->next_local)
                                    : *shard->next_local;
      }
      for (const ShardMessage& message : shard->mailbox) {
        global = global.has_value() ? std::min(*global, message.deliver_at)
                                    : message.deliver_at;
      }
    }
    if (!global.has_value()) {
      done_ = true;
      return;
    }
    window_start_ = kSimEpoch + lookahead_ * ((*global - kSimEpoch) / lookahead_);
  }

  [[nodiscard]] bool is_done() EACACHE_EXCLUDES(round_mutex_) {
    MutexLock lock(round_mutex_);
    return done_;
  }

  void rethrow_failure() EACACHE_EXCLUDES(round_mutex_) {
    std::exception_ptr failure;
    {
      MutexLock lock(round_mutex_);
      failure = failure_;
    }
    if (failure) std::rethrow_exception(failure);
  }

  // ---- protocol handlers ------------------------------------------------

  void send(Shard& shard, ShardMessage message) {
    shard.outbox[partition_.shard_of[message.to]].push_back(std::move(message));
  }

  [[nodiscard]] bool peer_down(ProxyId proxy, TimePoint at) const {
    for (const PeerOutage& outage : spec_.faults.outages) {
      if (outage.proxy == proxy && at >= outage.start && at < outage.end) return true;
    }
    return false;
  }

  [[nodiscard]] bool uses_ea() const {
    return placement_->kind() != PlacementKind::kAdHoc;
  }

  [[nodiscard]] std::uint64_t pending_key(std::uint64_t request_index, ProxyId node) const {
    return request_index * topology_.num_proxies() + node;
  }

  void admit(Shard& shard, std::uint64_t index, TimePoint now) {
    const Request& request = trace_.requests[index];
    const ProxyId home = home_proxy_in(topology_, request.user);
    ProxyCache& requester = shard.proxy(home);
    requester.note_client_request();
    shard.obs_requests.inc();
    shard.obs_request_bytes.observe(static_cast<double>(request.size));

    if (const auto size = requester.serve_local(request.document, now)) {
      shard.metrics.record(RequestOutcome::kLocalHit, *size, spec_.group.latency.local_hit);
      return;
    }

    Shard::RequestCtx& ctx = shard.contexts[index];
    ctx.request = request;
    ctx.home = home;

    std::vector<ProxyId> targets = topology_.siblings_of(home);
    if (const auto parent = topology_.parent_of(home)) targets.push_back(*parent);
    if (targets.empty()) {
      resolve_group_miss(shard, index, ctx, now);
      return;
    }
    ctx.awaiting_replies = targets.size();
    for (const ProxyId target : targets) {
      shard.transport.record_icp_query(IcpQuery{home, target, request.document});
      shard.obs_icp_queries.inc();
      ShardMessage probe;
      probe.kind = ShardMessageKind::kIcpProbe;
      probe.request_index = index;
      probe.from = home;
      probe.to = target;
      probe.deliver_at = now + d_probe_;
      probe.document = request.document;
      probe.size = request.size;
      send(shard, std::move(probe));
    }
  }

  void on_icp_probe(Shard& shard, const ShardMessage& message, TimePoint now) {
    ShardMessage reply;
    reply.kind = ShardMessageKind::kIcpReply;
    reply.request_index = message.request_index;
    reply.from = message.to;
    reply.to = message.from;
    reply.deliver_at = now + d_reply_;
    reply.document = message.document;
    reply.size = message.size;
    if (peer_down(message.to, now)) {
      // An outaged peer never answers; the requester learns that at the
      // reply deadline and books the exchange as a loss.
      reply.status = ShardProbeStatus::kDown;
    } else {
      const bool hit = shard.proxy(message.to).answer_icp(message.document);
      shard.transport.record_icp_reply(
          IcpReply{message.to, message.from, message.document, hit});
      shard.obs_icp_replies.inc();
      reply.status = hit ? ShardProbeStatus::kHit : ShardProbeStatus::kMiss;
    }
    send(shard, std::move(reply));
  }

  void on_icp_reply(Shard& shard, const ShardMessage& message, TimePoint now) {
    Shard::RequestCtx& ctx = shard.contexts.at(message.request_index);
    if (message.status == ShardProbeStatus::kDown) {
      shard.transport.record_icp_loss();
      shard.obs_icp_losses.inc();
    } else if (message.status == ShardProbeStatus::kHit) {
      ctx.candidates.push_back(message.from);
    }
    if (--ctx.awaiting_replies > 0) return;
    sort_by_ring_distance(ctx.candidates, ctx.home, topology_.num_proxies());
    try_next_candidate(shard, message.request_index, ctx, now);
  }

  void try_next_candidate(Shard& shard, std::uint64_t index, Shard::RequestCtx& ctx,
                          TimePoint now) {
    if (ctx.next_candidate >= ctx.candidates.size()) {
      resolve_group_miss(shard, index, ctx, now);
      return;
    }
    const ProxyId responder = ctx.candidates[ctx.next_candidate++];
    ProxyCache& requester = shard.proxy(ctx.home);

    HttpRequest fetch;
    fetch.from = ctx.home;
    fetch.to = responder;
    fetch.document = ctx.request.document;
    if (uses_ea()) fetch.requester_age = requester.expiration_age(now);
    shard.transport.record_http_request(fetch);
    shard.obs_sibling_fetches.inc();

    ShardMessage message;
    message.kind = ShardMessageKind::kFetchRequest;
    message.request_index = index;
    message.from = ctx.home;
    message.to = responder;
    message.deliver_at = now + d_probe_;
    message.document = ctx.request.document;
    message.size = ctx.request.size;
    message.age = fetch.requester_age;
    send(shard, std::move(message));
  }

  void on_fetch_request(Shard& shard, const ShardMessage& message, TimePoint now) {
    HttpRequest fetch;
    fetch.from = message.from;
    fetch.to = message.to;
    fetch.document = message.document;
    fetch.requester_age = message.age;
    // Unlike the synchronous driver, simulated time passed since the ICP
    // reply: the copy may be gone, which serve_fetch answers as a
    // header-only not-found (the requester moves to its next candidate).
    const HttpResponse response = shard.proxy(message.to).serve_fetch(fetch, now);
    shard.transport.record_http_response(response);

    ShardMessage body;
    body.kind = ShardMessageKind::kFetchBody;
    body.request_index = message.request_index;
    body.from = message.to;
    body.to = message.from;
    body.deliver_at = now + d_body_;
    body.document = message.document;
    body.size = response.body_size;
    body.found = response.found;
    body.age = response.responder_age;
    send(shard, std::move(body));
  }

  void on_fetch_body(Shard& shard, const ShardMessage& message, TimePoint now) {
    Shard::RequestCtx& ctx = shard.contexts.at(message.request_index);
    if (!message.found) {
      ctx.penalty += spec_.group.latency.failed_probe;
      try_next_candidate(shard, message.request_index, ctx, now);
      return;
    }
    shard.proxy(ctx.home).consider_caching(Document{message.document, message.size, 0},
                                           message.age, now);
    shard.metrics.record(RequestOutcome::kRemoteHit, message.size,
                         spec_.group.latency.remote_hit + ctx.penalty);
    shard.contexts.erase(message.request_index);
  }

  void resolve_group_miss(Shard& shard, std::uint64_t index, Shard::RequestCtx& ctx,
                          TimePoint now) {
    const auto parent = topology_.parent_of(ctx.home);
    if (!parent) {
      // Distributed architecture: origin fetch, completing shard-locally.
      shard.queue.schedule_at(now + d_origin_, [this, &shard, index](TimePoint at) {
        finish_origin_miss(shard, index, at);
      });
      return;
    }
    send_parent_hop(shard, ctx.home, *parent, index, ctx.request.document, ctx.request.size,
                    now);
  }

  void finish_origin_miss(Shard& shard, std::uint64_t index, TimePoint now) {
    Shard::RequestCtx& ctx = shard.contexts.at(index);
    ProxyCache& requester = shard.proxy(ctx.home);
    const Document document{ctx.request.document, ctx.request.size, 0};
    shard.transport.record_origin_fetch(ctx.home, document.size);
    shard.obs_origin_fetches.inc();
    if (!requester.store().contains(document.id)) {
      requester.cache_after_origin_fetch(document, now);
    }
    shard.metrics.record(RequestOutcome::kMiss, document.size,
                         spec_.group.latency.miss + ctx.penalty);
    shard.contexts.erase(index);
  }

  void send_parent_hop(Shard& shard, ProxyId child, ProxyId parent, std::uint64_t index,
                       DocumentId document, Bytes size, TimePoint now) {
    HttpRequest hop;
    hop.from = child;
    hop.to = parent;
    hop.document = document;
    if (uses_ea()) hop.requester_age = shard.proxy(child).expiration_age(now);
    shard.transport.record_http_request(hop);
    shard.obs_parent_fetches.inc();

    ShardMessage message;
    message.kind = ShardMessageKind::kParentRequest;
    message.request_index = index;
    message.from = child;
    message.to = parent;
    message.deliver_at = now + d_probe_;
    message.document = document;
    message.size = size;
    message.age = hop.requester_age;
    send(shard, std::move(message));
  }

  void on_parent_request(Shard& shard, const ShardMessage& message, TimePoint now) {
    ProxyCache& parent = shard.proxy(message.to);
    if (parent.store().contains(message.document)) {
      // Reachable above the ICP horizon: a cache hit at a higher level.
      HttpRequest hop;
      hop.from = message.from;
      hop.to = message.to;
      hop.document = message.document;
      hop.requester_age = message.age;
      const HttpResponse response = parent.serve_remote(hop, now);
      shard.transport.record_http_response(response);
      send_parent_body(shard, message.request_index, message.to, message.from,
                       message.document, response.body_size, ResponseSource::kCache,
                       response.responder_age, now);
      return;
    }
    if (const auto grandparent = topology_.parent_of(message.to)) {
      // Forward up, remembering which child to answer on the way down.
      shard.parent_pending[pending_key(message.request_index, message.to)] = message.from;
      send_parent_hop(shard, message.to, *grandparent, message.request_index,
                      message.document, message.size, now);
      return;
    }
    // Top of the chain: fetch from the origin, completing shard-locally.
    const ShardMessage request = message;
    shard.queue.schedule_at(now + d_origin_, [this, &shard, request](TimePoint at) {
      finish_origin_as_parent(shard, request, at);
    });
  }

  void finish_origin_as_parent(Shard& shard, const ShardMessage& message, TimePoint now) {
    ProxyCache& parent = shard.proxy(message.to);
    const Document document{message.document, message.size, 0};
    shard.transport.record_origin_fetch(message.to, document.size);
    shard.obs_origin_fetches.inc();
    HttpRequest hop;
    hop.from = message.from;
    hop.to = message.to;
    hop.document = message.document;
    hop.requester_age = message.age;
    const HttpResponse response = parent.resolve_miss_as_parent(document, hop, now);
    shard.transport.record_http_response(response);
    send_parent_body(shard, message.request_index, message.to, message.from,
                     message.document, message.size, ResponseSource::kOrigin,
                     response.responder_age, now);
  }

  void send_parent_body(Shard& shard, std::uint64_t index, ProxyId from, ProxyId to,
                        DocumentId document, Bytes size, ResponseSource source,
                        std::optional<ExpAge> age, TimePoint now) {
    ShardMessage message;
    message.kind = ShardMessageKind::kParentBody;
    message.request_index = index;
    message.from = from;
    message.to = to;
    message.deliver_at = now + d_body_;
    message.document = document;
    message.size = size;
    message.source = source;
    message.age = age;
    send(shard, std::move(message));
  }

  void on_parent_body(Shard& shard, const ShardMessage& message, TimePoint now) {
    ProxyCache& node = shard.proxy(message.to);
    const auto pending = shard.parent_pending.find(pending_key(message.request_index, message.to));
    if (pending != shard.parent_pending.end()) {
      // Intermediate node: decide whether to keep a copy (requester rule),
      // then answer the child with our own age.
      const ProxyId child = pending->second;
      shard.parent_pending.erase(pending);
      node.consider_caching(Document{message.document, message.size, 0}, message.age, now);
      HttpResponse down;
      down.from = message.to;
      down.to = child;
      down.document = message.document;
      down.body_size = message.size;
      down.source = message.source;
      if (uses_ea()) down.responder_age = node.expiration_age(now);
      shard.transport.record_http_response(down);
      send_parent_body(shard, message.request_index, message.to, child, message.document,
                       message.size, message.source, down.responder_age, now);
      return;
    }
    // The original requester: the chain resolved the document — a remote
    // hit iff some cache above the ICP horizon had it, a miss if the chain
    // went all the way to the origin.
    Shard::RequestCtx& ctx = shard.contexts.at(message.request_index);
    node.consider_caching(Document{message.document, message.size, 0}, message.age, now);
    const bool cache_hit = message.source == ResponseSource::kCache;
    shard.metrics.record(
        cache_hit ? RequestOutcome::kRemoteHit : RequestOutcome::kMiss, message.size,
        (cache_hit ? spec_.group.latency.remote_hit : spec_.group.latency.miss) + ctx.penalty);
    shard.contexts.erase(message.request_index);
  }

  void deliver(Shard& shard, const ShardMessage& message, TimePoint now) {
    switch (message.kind) {
      case ShardMessageKind::kIcpProbe: return on_icp_probe(shard, message, now);
      case ShardMessageKind::kIcpReply: return on_icp_reply(shard, message, now);
      case ShardMessageKind::kFetchRequest: return on_fetch_request(shard, message, now);
      case ShardMessageKind::kFetchBody: return on_fetch_body(shard, message, now);
      case ShardMessageKind::kParentRequest: return on_parent_request(shard, message, now);
      case ShardMessageKind::kParentBody: return on_parent_body(shard, message, now);
    }
  }

  void sample_series(Shard& shard, std::size_t index, TimePoint at) {
    for (const ProxyId p : partition_.members[shard.index]) {
      const ProxyCache& proxy = shard.proxy(p);
      ProxySeriesSample sample;
      const ExpAge age = proxy.expiration_age(at);
      sample.finite = !age.is_infinite();
      if (sample.finite) sample.exp_age_ms = age.millis();
      sample.resident_bytes = proxy.store().resident_bytes();
      sample.resident_docs = proxy.store().resident_count();
      shard.series.push_back(Shard::SeriesRecord{index, at, p, sample});
    }
  }

  // ---- end-of-run merge -------------------------------------------------

  [[nodiscard]] const ProxyCache& proxy_at(ProxyId p) const {
    return *shards_[partition_.shard_of[p]]->proxies[p];
  }

  SimulationResult collect() {
    SimulationResult result;
    const std::size_t total = topology_.num_proxies();

    MetricRegistry merged(spec_.group.obs.registry);
    for (auto& shard : shards_) {
      result.metrics.merge(shard->metrics);
      result.transport.merge(shard->transport.stats());
      merged.merge(shard->registry);
    }

    // Series points: every shard sampled its own proxies at the same
    // global instants; reassemble per-instant points in proxy-id order.
    std::size_t num_points = 0;
    for (const auto& shard : shards_) {
      for (const Shard::SeriesRecord& record : shard->series) {
        num_points = std::max(num_points, record.index + 1);
      }
    }
    result.proxy_series.resize(num_points);
    for (auto& point : result.proxy_series) point.proxies.resize(total);
    for (const auto& shard : shards_) {
      for (const Shard::SeriesRecord& record : shard->series) {
        result.proxy_series[record.index].at = record.at;
        result.proxy_series[record.index].proxies[record.proxy] = record.sample;
      }
    }

    // Occupancy diagnostics + per-proxy reporting, in global id order.
    std::unordered_map<DocumentId, bool> seen;
    double age_sum_ms = 0.0;
    std::size_t finite_ages = 0;
    for (ProxyId p = 0; p < static_cast<ProxyId>(total); ++p) {
      const ProxyCache& proxy = proxy_at(p);
      result.per_cache_expiration_age.push_back(proxy.contention().lifetime_average());
      result.proxy_stats.push_back(proxy.stats());
      result.total_resident_copies += proxy.store().resident_count();
      for (const DocumentId id : proxy.store().resident_ids()) seen[id] = true;
      const ExpAge age = proxy.contention().lifetime_average();
      if (!age.is_infinite()) {
        age_sum_ms += age.millis();
        ++finite_ages;
      }
      if (merged.enabled()) {
        const std::string prefix = "proxy." + std::to_string(p) + ".";
        merged.gauge(prefix + "resident_bytes")
            .set(static_cast<double>(proxy.store().resident_bytes()));
        merged.gauge(prefix + "resident_docs")
            .set(static_cast<double>(proxy.store().resident_count()));
      }
    }
    result.unique_resident_documents = seen.size();
    result.replication_factor =
        seen.empty() ? 0.0
                     : static_cast<double>(result.total_resident_copies) /
                           static_cast<double>(seen.size());
    result.average_cache_expiration_age =
        finite_ages == 0 ? ExpAge::infinite()
                         : ExpAge::from_millis(age_sum_ms / static_cast<double>(finite_ages));
    if (merged.enabled()) {
      merged.gauge("group.replication_factor").set(result.replication_factor);
    }
    result.registry = merged.snapshot();
    return result;
  }

  // ---- members ----------------------------------------------------------

  const Trace& trace_;
  const RunSpec& spec_;
  Topology topology_;
  TopologyPartition partition_;
  std::shared_ptr<const PlacementPolicy> placement_;
  Duration lookahead_;
  Duration d_probe_{};
  Duration d_reply_{};
  Duration d_body_{};
  Duration d_origin_{};

  std::vector<std::unique_ptr<Shard>> shards_;

  Mutex round_mutex_;
  CondVar round_cv_;
  std::size_t waiting_ EACACHE_GUARDED_BY(round_mutex_) = 0;
  std::uint64_t generation_ EACACHE_GUARDED_BY(round_mutex_) = 0;
  TimePoint window_start_ EACACHE_GUARDED_BY(round_mutex_){};
  bool done_ EACACHE_GUARDED_BY(round_mutex_) = false;
  std::exception_ptr failure_ EACACHE_GUARDED_BY(round_mutex_);
};

}  // namespace

SimulationResult run_sharded_simulation(const Trace& trace, const RunSpec& spec,
                                        PhaseTimings* timings) {
  if (!spec.exec.sharded()) {
    throw std::invalid_argument("run_sharded_simulation: ExecutionPolicy::shards must be >= 1");
  }
  spec.validate_or_throw(RunTarget::kSimulation);
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("run_sharded_simulation: trace must be time-ordered");
  }
  ShardEngine engine(trace, spec);
  return engine.run(timings);
}

}  // namespace eacache
