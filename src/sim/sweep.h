// Parallel experiment engine: every figure, table and ablation in this
// repository is a *sweep* — the same immutable trace replayed under many
// GroupConfig variants. `run_simulation(trace, config)` is a pure function
// of its inputs, so config-level fan-out is embarrassingly parallel.
//
// Three pieces:
//   * TraceCache    — loads/synthesizes each trace exactly once and shares
//                     it immutably (shared_ptr<const Trace>) across workers.
//   * SweepRunner   — fixed-size thread pool over a queue of
//                     (label, GroupConfig, trace-ref) jobs. Results come
//                     back in SUBMISSION order, independent of completion
//                     order: parallelism may reorder scheduling, never
//                     results.
//   * SweepOptions::sink — streaming consumer invoked with each completed
//                     run, also in submission order (a growing prefix), on
//                     the thread that called run(). Pair with
//                     make_json_row_sink (sim/result_json.h) for per-run
//                     JSON rows next to the existing table/ASCII renderers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/obs_config.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace eacache {

struct WorkloadSpec;  // trace/workload.h

/// Shared, immutable handle to a trace. Workers only ever read through it;
/// ownership rules are documented in DESIGN.md (trace sharing).
using TraceRef = std::shared_ptr<const Trace>;

/// Non-owning TraceRef for a trace whose lifetime the caller manages (it
/// must outlive every SweepRunner::run() that uses it).
[[nodiscard]] inline TraceRef borrow_trace(const Trace& trace) {
  return TraceRef(std::shared_ptr<const Trace>(), &trace);
}

/// Keyed memo of immutable traces. Each key's factory runs exactly once,
/// even under concurrent get_or_create calls (losers block until the
/// winner's trace is ready); a factory that throws is retried by the next
/// caller.
class TraceCache {
 public:
  using Factory = std::function<Trace()>;

  [[nodiscard]] TraceRef get_or_create(const std::string& key, const Factory& factory)
      EACACHE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EACACHE_EXCLUDES(mutex_);
  void clear() EACACHE_EXCLUDES(mutex_);

  /// Process-wide cache shared by the bench binaries.
  [[nodiscard]] static TraceCache& global();

 private:
  // Entries live behind shared_ptr (Mutex is immovable) and carry their own
  // lock: publication happens through the entry's kIdle→kLoading→kReady
  // state machine, NOT through cache-wide mutex_, so loads of different
  // keys overlap and the factory never runs under any lock. A throwing
  // factory resets kLoading→kIdle and wakes waiters so the next caller
  // retries (TraceCacheTest.ThrowingFactoryIsRetried). This used to be
  // std::call_once, whose exceptional path deadlocks under TSan's
  // pthread_once interceptor — found by tests/run_tsan_pipeline.sh.
  struct Entry {
    enum class State : std::uint8_t { kIdle, kLoading, kReady };

    Mutex mutex;
    CondVar ready_cv;
    State state EACACHE_GUARDED_BY(mutex) = State::kIdle;
    TraceRef trace EACACHE_GUARDED_BY(mutex);
  };

  /// Blocks until `entry` is ready (loading it here if idle), then returns
  /// its trace. Runs `factory` outside both locks.
  TraceRef load_entry(const std::shared_ptr<Entry>& entry, const Factory& factory);

  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> entries_ EACACHE_GUARDED_BY(mutex_);
};

/// Memoized workload-DSL trace: materializes generate_workload_trace(spec)
/// through `cache` keyed by the canonical spec string
/// (format_workload_spec), so every job sharing a scenario shares one
/// immutable trace. Callers typically also copy the same canonical string
/// into RunSpec::workload for the result-JSON echo.
[[nodiscard]] TraceRef get_or_create_workload(TraceCache& cache, const WorkloadSpec& spec);

/// One unit of sweep work: replay `trace` through the run described by
/// `spec`. The label travels with the result row (tables, JSON). Jobs with
/// `spec.exec.shards >= 1` run the sharded engine; the sweep pool and the
/// shard workers compose (jobs = pool width, shards = threads per job).
struct SweepJob {
  std::string label;
  RunSpec spec;
  TraceRef trace;
};

/// A completed job: its identity plus the simulation output and the
/// wall-clock cost of this single run. Per-phase wall-clock lives HERE and
/// not in SimulationResult, so the simulation JSON stays a pure function of
/// the simulated world (the parallel-determinism tests depend on that).
struct SweepRunResult {
  std::string label;
  GroupConfig config;        // spec.group as run (after any obs_override)
  std::string workload;      // RunSpec::workload echo ("" for non-DSL traces)
  SimulationResult result;
  double wall_ms = 0.0;
  double trace_load_ms = 0.0;  // factory cost of this job's trace (0 if
                               // borrowed or already cached)
  PhaseTimings timings;        // sim/report split of wall_ms
};

struct SweepOptions {
  /// Worker threads; 0 means resolve_job_count() (EACACHE_JOBS env or
  /// hardware concurrency — see common/config.h).
  std::size_t jobs = 0;

  /// Streaming consumer of completed runs, invoked in submission order on
  /// the thread that called run(). May be empty.
  std::function<void(const SweepRunResult&)> sink;

  /// When set, every job runs with this ObsConfig in place of its own —
  /// how the bench flags (--trace-out, --no-obs) reach all jobs without
  /// every bench threading observability through its config construction.
  std::optional<ObsConfig> obs_override;

  /// Validate-sweep mode: force RunSpec::check_invariants on for every
  /// job, attaching the invariant checker (DESIGN.md §10) to each run. How
  /// the --validate bench flag reaches all jobs, and how the fuzz harness
  /// shards invariant-checked cases across the pool deterministically.
  bool validate = false;
};

/// Fixed-size thread pool over a queue of sweep jobs.
///
/// Guarantees:
///   * results are returned (and streamed to the sink) in the order jobs
///     were added, regardless of which worker finishes first;
///   * simulation outputs are bit-identical to a serial run — workers share
///     nothing mutable (each run_simulation builds its own CacheGroup, the
///     trace is const);
///   * a job that throws does not abort the sweep: every job runs, then the
///     lowest-index exception is rethrown from run().
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Enqueue a job; returns its index (== its slot in run()'s result).
  std::size_t add(SweepJob job);
  std::size_t add(std::string label, RunSpec spec, TraceRef trace);
  /// DEPRECATED: pre-RunSpec shape, kept one release. Wraps the pieces
  /// into a RunSpec (config -> spec.group, options -> the per-run knobs).
  std::size_t add(std::string label, GroupConfig config, TraceRef trace,
                  SimulationOptions options = {});

  [[nodiscard]] std::size_t pending() const { return jobs_.size(); }

  /// Execute every queued job on the pool and clear the queue. Returns one
  /// SweepRunResult per job, in submission order.
  [[nodiscard]] std::vector<SweepRunResult> run();

 private:
  SweepOptions options_;
  std::vector<SweepJob> jobs_;
};

namespace detail {
/// Rows currently held by the process-wide trace-load cost table
/// (sweep.cpp). Keyed by Trace address; each row is erased by its trace's
/// deleter, so the table never resurfaces a stale cost after an address is
/// recycled and cannot grow without bound across cleared caches. Exposed
/// only so tests/sim/sweep_test.cpp can pin that lifetime contract.
[[nodiscard]] std::size_t trace_load_table_size();
}  // namespace detail

}  // namespace eacache
