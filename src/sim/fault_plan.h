// Compatibility shim: FaultPlan moved to core/fault_plan.h so the daemon
// layer (which schedules flushes through the load generator rather than the
// event queue) can share the declarative fault vocabulary without touching
// sim/ headers. Include core/fault_plan.h directly in new code.
#pragma once

#include "core/fault_plan.h"
