#include "validate/invariants.h"

#include <algorithm>
#include <cmath>

#include "storage/cache_store.h"

namespace eacache {

namespace {

[[nodiscard]] std::int64_t sim_ms(TimePoint at) { return (at - kSimEpoch).count(); }

/// Float-tolerant ExpAge equality: the shadow window replays the same
/// additions in the same order, but the estimator's time window flushes its
/// running sum on different query schedules, so allow rounding slack.
[[nodiscard]] bool ages_close(ExpAge a, ExpAge b) {
  if (a.is_infinite() || b.is_infinite()) return a.is_infinite() && b.is_infinite();
  const double scale = std::max(std::abs(a.millis()), std::abs(b.millis()));
  return std::abs(a.millis() - b.millis()) <= 1e-3 + 1e-9 * scale;
}

[[nodiscard]] std::string age_str(ExpAge age) {
  return age.is_infinite() ? "inf" : std::to_string(age.millis());
}

}  // namespace

InvariantChecker::InvariantChecker(CacheGroup& group)
    : InvariantChecker(group, Options()) {}

InvariantChecker::InvariantChecker(CacheGroup& group, Options options)
    : group_(&group), options_(options) {
  if (options_.heavy_stride == 0) options_.heavy_stride = 1;
  if (options_.lru_stack_stride == 0) options_.lru_stack_stride = 1;
  report_.enabled = true;

  audits_.reserve(group_->num_proxies());
  for (ProxyId p = 0; p < group_->num_proxies(); ++p) {
    const ProxyCache& proxy = group_->proxy(p);
    auto audit = std::make_unique<CacheAudit>();
    audit->owner = this;
    audit->id = p;
    audit->store = &proxy.store();
    audit->form = age_form_for_policy(proxy.store().policy().name());
    audit->lru_stack = proxy.store().policy().name() == "lru";
    const WindowConfig& window = group_->config().window;
    audit->window_kind = window.kind;
    audit->time_window = window.time_window;
    if (window.kind == WindowKind::kVictimCount) {
      audit->ring.assign(window.victim_count, 0.0);
    }
    group_->add_eviction_observer(p, audit.get());
    audits_.push_back(std::move(audit));
  }
  group_->attach_auditor(this);
}

InvariantChecker::~InvariantChecker() { group_->attach_auditor(nullptr); }

void InvariantChecker::violate(const char* law, TimePoint at, std::string detail) {
  report_.add(law, std::move(detail), sim_ms(at));
}

void InvariantChecker::hook(TimePoint now) {
  note_check();
  if (now < last_now_) {
    violate("time-monotone", now,
            "hook time ran backwards: " + std::to_string(sim_ms(last_now_)) + "ms then " +
                std::to_string(sim_ms(now)) + "ms");
  } else {
    last_now_ = now;
  }
  ++hook_calls_;
  check_counts_partition(now);
  if (hook_calls_ % options_.heavy_stride == 0) heavy_checks(now);
}

void InvariantChecker::after_request(const Request& request, TimePoint now) {
  ++requests_seen_;
  hook(now);
  if (!group_->config().pipeline.event_driven) {
    note_check();
    const std::uint64_t total = group_->metrics().total_requests();
    if (total != requests_seen_) {
      violate("counts-partition", now,
              "legacy driver served " + std::to_string(requests_seen_) +
                  " requests but metrics.total_requests() is " + std::to_string(total));
    }
  }
  (void)request;
}

void InvariantChecker::after_step(TimePoint now) { hook(now); }

void InvariantChecker::check_counts_partition(TimePoint now) {
  note_check();
  const GroupMetrics& metrics = group_->metrics();
  const std::uint64_t total = metrics.total_requests();
  const std::uint64_t parts = metrics.count(RequestOutcome::kLocalHit) +
                              metrics.count(RequestOutcome::kRemoteHit) +
                              metrics.count(RequestOutcome::kMiss);
  if (parts != total) {
    violate("counts-partition", now,
            "hits+remote+misses == " + std::to_string(parts) + " but total_requests == " +
                std::to_string(total));
  }
  note_check();
  const Bytes byte_parts = metrics.bytes(RequestOutcome::kLocalHit) +
                           metrics.bytes(RequestOutcome::kRemoteHit) +
                           metrics.bytes(RequestOutcome::kMiss);
  if (byte_parts != metrics.bytes_requested()) {
    violate("counts-partition", now,
            "per-outcome bytes sum to " + std::to_string(byte_parts) +
                " but bytes_requested is " + std::to_string(metrics.bytes_requested()));
  }
}

void InvariantChecker::heavy_checks(TimePoint now) {
  for (ProxyId p = 0; p < group_->num_proxies(); ++p) {
    const ProxyCache& proxy = group_->proxy(p);
    const CacheStore& store = proxy.store();

    note_check();
    Bytes sum = 0;
    for (const DocumentId id : store.resident_ids()) {
      const auto entry = store.peek(id);
      if (entry) sum += entry->size;
    }
    if (sum != store.resident_bytes()) {
      violate("byte-accounting", now,
              "proxy " + std::to_string(p) + ": sum of resident sizes " + std::to_string(sum) +
                  " != resident_bytes " + std::to_string(store.resident_bytes()));
    }
    note_check();
    if (store.resident_bytes() > store.capacity()) {
      violate("capacity", now,
              "proxy " + std::to_string(p) + ": resident_bytes " +
                  std::to_string(store.resident_bytes()) + " exceeds capacity " +
                  std::to_string(store.capacity()));
    }

    note_check();
    const ExpAge reported = proxy.expiration_age(now);
    const ExpAge shadow = audits_[p]->shadow_age(now);
    if (!ages_close(reported, shadow)) {
      violate("eq5-window-mean", now,
              "proxy " + std::to_string(p) + ": reported CacheExpAge " + age_str(reported) +
                  "ms != shadow window mean " + age_str(shadow) + "ms");
    }
  }
}

bool InvariantChecker::requester_rule_allows(ExpAge requester, ExpAge responder) const {
  switch (group_->config().placement) {
    case PlacementKind::kAdHoc:
      return true;
    case PlacementKind::kEa:
      return requester >= responder;  // paper §3.3
    case PlacementKind::kEaHysteresis: {
      if (responder.is_infinite()) return requester.is_infinite();
      if (requester.is_infinite()) return true;
      return requester.millis() >= group_->config().ea_hysteresis * responder.millis();
    }
  }
  return true;
}

void InvariantChecker::on_placement(ProxyId proxy, DocumentId document, TimePoint at,
                                    Bytes size, std::optional<ExpAge> requester_age,
                                    std::optional<ExpAge> responder_age, bool accepted) {
  // Only requester-side decisions carry a wire requester age (sibling remote
  // hits); parent-chain placements audit nothing here — their requester age
  // never flowed through this hook, and guessing it would re-query the
  // estimator and perturb the very counters under test.
  if (!requester_age.has_value()) return;

  const CacheStore& store = group_->proxy(proxy).store();
  const bool rule_yes =
      requester_rule_allows(*requester_age, responder_age.value_or(ExpAge::infinite()));
  const bool fits = size <= store.capacity();

  note_check();
  if (accepted && !(rule_yes && fits)) {
    violate("placement-rule", at,
            "proxy " + std::to_string(proxy) + " kept doc " + std::to_string(document) +
                " but the rule said no (req=" + age_str(*requester_age) +
                "ms resp=" + age_str(responder_age.value_or(ExpAge::infinite())) +
                "ms fits=" + (fits ? "yes" : "no") + ")");
  }
  note_check();
  if (!accepted && rule_yes && fits && !store.contains(document)) {
    violate("placement-rule", at,
            "proxy " + std::to_string(proxy) + " declined doc " + std::to_string(document) +
                " although EA(req)=" + age_str(*requester_age) +
                "ms >= EA(resp)=" + age_str(responder_age.value_or(ExpAge::infinite())) +
                "ms, it fits, and no copy is resident");
  }
}

void InvariantChecker::CacheAudit::on_eviction(const EvictionRecord& record) {
  owner->report_.checks += 3;  // temporal, monotone, capacity
  if (record.last_hit_time < record.entry_time || record.evict_time < record.last_hit_time) {
    owner->violate("eviction-temporal", record.evict_time,
                   "proxy " + std::to_string(id) + " victim " + std::to_string(record.id) +
                       ": entry/last-hit/evict times out of order");
  }
  if (record.evict_time < last_evict) {
    owner->violate("time-monotone", record.evict_time,
                   "proxy " + std::to_string(id) + ": eviction at " +
                       std::to_string(sim_ms(record.evict_time)) + "ms after one at " +
                       std::to_string(sim_ms(last_evict)) + "ms");
  } else {
    last_evict = record.evict_time;
  }

  if (store->resident_bytes() > store->capacity()) {
    owner->violate("capacity", record.evict_time,
                   "proxy " + std::to_string(id) + ": resident_bytes " +
                       std::to_string(store->resident_bytes()) + " exceeds capacity " +
                       std::to_string(store->capacity()) + " mid-eviction");
  }

  if (record.cause != EvictionCause::kCapacity) return;
  ++capacity_evictions;

  // LRU stack property, sampled: the victim must be the least-recently-
  // promoted entry — nothing still resident may have an older last hit.
  // (Safe: the store erases the victim before notifying, see eviction.h.)
  if (lru_stack && (capacity_evictions - 1) % owner->options_.lru_stack_stride == 0) {
    owner->note_check();
    for (const DocumentId resident : store->resident_ids()) {
      const auto entry = store->peek(resident);
      if (entry && entry->last_hit_time < record.last_hit_time) {
        owner->violate("lru-stack", record.evict_time,
                       "proxy " + std::to_string(id) + " evicted doc " +
                           std::to_string(record.id) + " (last hit " +
                           std::to_string(sim_ms(record.last_hit_time)) + "ms) while doc " +
                           std::to_string(resident) + " (last hit " +
                           std::to_string(sim_ms(entry->last_hit_time)) +
                           "ms) was less recently promoted");
        break;
      }
    }
  }

  // Shadow Eq. 5 window (independent mirror of ContentionEstimator).
  const double age_ms = doc_exp_age(form, record).millis();
  ++victims;
  lifetime_sum_ms += age_ms;
  switch (window_kind) {
    case WindowKind::kCumulative:
      break;
    case WindowKind::kVictimCount:
      if (ring_filled == ring.size()) {
        ring_sum -= ring[ring_next];
      } else {
        ++ring_filled;
      }
      ring[ring_next] = age_ms;
      ring_sum += age_ms;
      ring_next = (ring_next + 1) % ring.size();
      break;
    case WindowKind::kTimeWindow:
      samples.push_back(Sample{record.evict_time, age_ms});
      window_sum += age_ms;
      break;
  }
}

ExpAge InvariantChecker::CacheAudit::shadow_age(TimePoint now) {
  switch (window_kind) {
    case WindowKind::kCumulative:
      if (victims == 0) return ExpAge::infinite();
      return ExpAge::from_millis(lifetime_sum_ms / static_cast<double>(victims));
    case WindowKind::kVictimCount:
      if (ring_filled == 0) return ExpAge::infinite();
      return ExpAge::from_millis(ring_sum / static_cast<double>(ring_filled));
    case WindowKind::kTimeWindow: {
      const TimePoint cutoff =
          now - time_window >= kSimEpoch ? now - time_window : kSimEpoch;
      while (!samples.empty() && samples.front().at < cutoff) {
        window_sum -= samples.front().age_ms;
        samples.pop_front();
      }
      if (samples.empty()) {
        window_sum = 0.0;
        return ExpAge::infinite();
      }
      return ExpAge::from_millis(window_sum / static_cast<double>(samples.size()));
    }
  }
  return ExpAge::infinite();
}

void InvariantChecker::finish(std::size_t trace_requests, const PipelineStats* pipeline) {
  const TimePoint now = last_now_;

  note_check();
  const std::uint64_t total = group_->metrics().total_requests();
  if (total != trace_requests) {
    violate("counts-partition", now,
            "end of run: metrics.total_requests() == " + std::to_string(total) +
                " but the trace had " + std::to_string(trace_requests) + " requests");
  }
  check_counts_partition(now);
  heavy_checks(now);

  for (ProxyId p = 0; p < group_->num_proxies(); ++p) {
    const ContentionEstimator& estimator = group_->proxy(p).contention();
    CacheAudit& audit = *audits_[p];
    note_check();
    if (estimator.victims_observed() != audit.victims) {
      violate("eq5-window-mean", now,
              "proxy " + std::to_string(p) + ": estimator saw " +
                  std::to_string(estimator.victims_observed()) +
                  " capacity victims, the shadow saw " + std::to_string(audit.victims));
    }
    note_check();
    const ExpAge lifetime = estimator.lifetime_average();
    const ExpAge shadow_lifetime =
        audit.victims == 0
            ? ExpAge::infinite()
            : ExpAge::from_millis(audit.lifetime_sum_ms / static_cast<double>(audit.victims));
    if (!ages_close(lifetime, shadow_lifetime)) {
      violate("eq5-window-mean", now,
              "proxy " + std::to_string(p) + ": lifetime average " + age_str(lifetime) +
                  "ms != shadow " + age_str(shadow_lifetime) + "ms");
    }
  }

  if (pipeline != nullptr && pipeline->enabled) {
    note_check();
    if (pipeline->started != trace_requests) {
      violate("pipeline-conservation", now,
              "pipeline started " + std::to_string(pipeline->started) + " of " +
                  std::to_string(trace_requests) + " trace requests");
    }
    note_check();
    if (pipeline->completed != pipeline->started) {
      violate("pipeline-conservation", now,
              "pipeline completed " + std::to_string(pipeline->completed) + " of " +
                  std::to_string(pipeline->started) + " started requests");
    }
    note_check();
    if (!group_->config().pipeline.coalesce && pipeline->coalesced_joins != 0) {
      violate("pipeline-coalesce", now,
              "coalescing is off but " + std::to_string(pipeline->coalesced_joins) +
                  " joins were recorded");
    }
    note_check();
    if (pipeline->started > 0 && pipeline->coalesced_joins >= pipeline->started) {
      violate("pipeline-coalesce", now,
              std::to_string(pipeline->coalesced_joins) +
                  " joins need more leaders than the " + std::to_string(pipeline->started) +
                  " requests started");
    }
    note_check();
    if (group_->config().pipeline.icp_retries == 0 &&
        (pipeline->icp_retries != 0 || pipeline->icp_recoveries != 0)) {
      violate("pipeline-retry", now,
              "retries are configured off but the pipeline recorded " +
                  std::to_string(pipeline->icp_retries) + " retries / " +
                  std::to_string(pipeline->icp_recoveries) + " recoveries");
    }
    note_check();
    if (pipeline->icp_retries > 0 && pipeline->icp_timeouts == 0) {
      violate("pipeline-retry", now, "retry rounds were issued without any probe timeout");
    }
    note_check();
    if (pipeline->max_in_flight > pipeline->started ||
        (pipeline->started > 0 && pipeline->max_in_flight == 0)) {
      violate("pipeline-conservation", now,
              "max_in_flight " + std::to_string(pipeline->max_in_flight) +
                  " inconsistent with " + std::to_string(pipeline->started) +
                  " started requests");
    }
  }
}

}  // namespace eacache
