// Randomized differential harness over both request drivers (DESIGN.md §10).
//
// A FuzzCase is a seeded random (GroupConfig, FaultPlan, trace) triple,
// shaped so the event-driven pipeline cannot overlap requests: the trace is
// respaced onto a 10 s grid, wider than the worst-case request lifecycle
// (local_lookup + icp_timeout + origin transfer < 5 s for every generated
// config), and fault instants are pinned midway between grid points. Under
// those conditions, whenever nothing can time out (no ICP loss, no peer
// outages) the two drivers must be observationally equivalent — identical
// hit/miss/placement/transport counters, and the pipeline's measured
// latency must equal the legacy driver's charged latency. Timeout-prone
// arms are held to the conservation subset only (a timeout resolves a
// request seconds late, and EA near-ties may legitimately flip). Every arm
// also runs with the invariant checker attached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "group/cache_group.h"
#include "core/fault_plan.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "core/validation_report.h"

namespace eacache {

struct FuzzCase {
  std::uint64_t seed = 0;
  std::string label;            // human-readable config digest
  GroupConfig config;           // legacy arm; the pipeline arm flips event_driven
  FaultPlan faults;
  TraceRef trace;               // respaced, overlap-free
  /// No ICP loss and no outages: nothing can time out, so the drivers must
  /// agree on EVERY counter (including measured vs charged latency). When
  /// false, a timeout shifts resolution by seconds and EA near-ties may
  /// legitimately flip — only the conservation subset is compared.
  bool strict = false;
};

/// Which generator supplies a fuzz case's trace.
///  * kSynthetic    — the legacy SyntheticTraceConfig path (the original
///                    corpus; seed-for-seed unchanged).
///  * kWorkloadDsl  — a random small workload-DSL spec (random composition
///                    of churn/flash/segments/sessions, clamped to a few
///                    hundred requests), so both drivers are differentially
///                    tested under drift and spike traces too. The stream is
///                    materialized and respaced onto the same overlap-free
///                    grid as the synthetic path.
enum class FuzzTraceKind { kSynthetic, kWorkloadDsl };

/// Deterministic generator: same seed, same case. Dimensions covered:
/// 2/4/8 proxies, LRU/LFU/GDS replacement, ad-hoc/EA/EA-hysteresis
/// placement, distributed/hierarchical topologies, ICP/digest discovery,
/// cooperative/hash-partition routing, all three Eq. 5 windows, ICP loss
/// rates, prefetching, and fault plans with flushes and peer outages.
[[nodiscard]] FuzzCase make_fuzz_case(std::uint64_t seed);
[[nodiscard]] FuzzCase make_fuzz_case(std::uint64_t seed, FuzzTraceKind kind);

/// The two arms' results diffed under the differential oracle, plus each
/// arm's invariant-checker report.
struct FuzzDiff {
  std::string label;
  std::vector<std::string> mismatches;  // empty = the drivers agree
  ValidationReport legacy_validation;
  ValidationReport pipeline_validation;

  [[nodiscard]] bool ok() const {
    return mismatches.empty() && legacy_validation.ok() && pipeline_validation.ok();
  }
  [[nodiscard]] std::string summary() const;
};

/// The differential oracle. `strict` arms are compared counter for counter
/// (metrics, transport, per-proxy stats, occupancy, total latency);
/// non-strict arms (loss/outage configs, where timeouts fire) only on the
/// conservation subset. Exposed for targeted tests.
[[nodiscard]] std::vector<std::string> diff_outcomes(const SimulationResult& legacy,
                                                     const SimulationResult& pipeline,
                                                     bool strict);

/// Run one case through both drivers serially, invariants on.
[[nodiscard]] FuzzDiff run_fuzz_case(const FuzzCase& fuzz_case);

/// The validate_sweep mode: shard `count` seeded cases (seeds base_seed,
/// base_seed+1, ...) across a SweepRunner thread pool with
/// SweepOptions::validate on — each case contributes its legacy and
/// pipeline arms as two jobs, and results pair up in submission order, so
/// the corpus verdict is deterministic for any worker count. `jobs` as in
/// SweepOptions (0 = resolve_job_count()). With `include_workload` true
/// (the EACACHE_FUZZ_WORKLOAD=1 test knob), odd-indexed cases draw their
/// traces from the workload DSL instead of the synthetic generator.
[[nodiscard]] std::vector<FuzzDiff> run_fuzz_corpus(std::uint64_t base_seed, std::size_t count,
                                                    std::size_t jobs,
                                                    bool include_workload = false);

}  // namespace eacache
