#include "validate/fuzz_driver.h"

#include <memory>
#include <utility>

#include "common/random.h"
#include "obs/obs_config.h"
#include "trace/synthetic.h"
#include "trace/workload.h"

namespace eacache {

namespace {

/// Request i of a respaced trace fires at epoch + (i+1) * kGrid. The widest
/// generated lifecycle is local_lookup (10 ms) + icp_timeout (<= 2 s) +
/// origin transfer (2784 - 50 ms), well under one grid step, so no two
/// pipeline requests ever overlap and faults pinned at grid + kGrid/2 land
/// between complete lifecycles under BOTH drivers.
constexpr Duration kGrid = sec(10);

[[nodiscard]] TimePoint grid_point(std::size_t index) {
  return kSimEpoch + kGrid * static_cast<SimClock::rep>(index + 1);
}

template <typename T>
[[nodiscard]] T pick(Rng& rng, std::initializer_list<T> choices) {
  return *(choices.begin() + rng.next_below(choices.size()));
}

}  // namespace

namespace {

/// Random small DSL spec: every component joins with probability 1/2, all
/// dimensions clamped so documents stay admissible under the smallest
/// generated capacity and the materialized stream stays a few hundred
/// requests.
[[nodiscard]] WorkloadSpec random_workload_spec(std::uint64_t seed, Rng& rng) {
  WorkloadSpec spec;
  spec.name = "fuzz";
  spec.seed = seed ^ 0xabcdef12345ull;
  spec.num_requests = 300 + rng.next_below(501);
  spec.num_documents = 60 + rng.next_below(181);
  spec.num_users = 8 + rng.next_below(25);
  spec.span = hours(6);  // irrelevant: respaced onto the grid afterwards
  spec.zipf_alpha = 0.6 + 0.5 * rng.next_double();
  spec.size.max_size = 32 * kKiB;  // keep documents admissible everywhere
  if (rng.next_bool(0.5)) {
    spec.churn.interval = minutes(45);
    spec.churn.fraction = 0.2 + 0.3 * rng.next_double();
  }
  if (rng.next_bool(0.5)) {
    spec.flash.peak = 0.2 + 0.2 * rng.next_double();
    spec.flash.start = hours(1);
    spec.flash.ramp = minutes(15);
    spec.flash.hold = hours(1);
  }
  if (rng.next_bool(0.5)) {
    spec.segments.fraction = 0.1;
    spec.segments.chunk_bytes = 4 * kKiB + 4 * kKiB * rng.next_below(4);
    spec.segments.min_chunks = 2;
    spec.segments.max_chunks = 4;
    spec.segments.gap = sec(1);
  }
  if (rng.next_bool(0.5)) {
    spec.sessions.affinity = 0.2 + 0.3 * rng.next_double();
    spec.sessions.active = 32;
    spec.sessions.window = 4;
  }
  return spec;
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t seed) {
  return make_fuzz_case(seed, FuzzTraceKind::kSynthetic);
}

FuzzCase make_fuzz_case(std::uint64_t seed, FuzzTraceKind kind) {
  Rng rng(seed);
  FuzzCase fuzz_case;
  fuzz_case.seed = seed;

  GroupConfig& config = fuzz_case.config;
  config.num_proxies = pick<std::size_t>(rng, {2, 4, 8});
  config.replacement = pick(rng, {PolicyKind::kLru, PolicyKind::kLru, PolicyKind::kLfu,
                                  PolicyKind::kGreedyDualSize});
  config.placement = pick(rng, {PlacementKind::kEa, PlacementKind::kEa, PlacementKind::kEa,
                                PlacementKind::kAdHoc, PlacementKind::kEaHysteresis});
  config.ea_hysteresis = 1.5;
  switch (rng.next_below(3)) {
    case 0: config.window = WindowConfig::cumulative(); break;
    case 1: config.window = WindowConfig::victims(pick<std::size_t>(rng, {8, 32, 128})); break;
    default: config.window = WindowConfig::time(pick(rng, {minutes(30), minutes(120)})); break;
  }
  config.topology = pick(rng, {TopologyKind::kDistributed, TopologyKind::kDistributed,
                               TopologyKind::kHierarchical});
  config.latency = LatencyModel::paper_defaults();
  config.discovery = pick(rng, {DiscoveryMode::kIcp, DiscoveryMode::kIcp, DiscoveryMode::kIcp,
                                DiscoveryMode::kDigest});
  if (config.discovery == DiscoveryMode::kDigest) {
    config.digest.expected_items = 1024;
    config.digest.refresh_period = minutes(10);
  }
  // Small aggregate budgets force steady capacity evictions — the whole
  // point: exercise the EA machinery, not a cold cache.
  config.aggregate_capacity = pick<Bytes>(rng, {32 * kKiB, 64 * kKiB, 128 * kKiB, 256 * kKiB});
  config.icp_loss_probability = pick(rng, {0.0, 0.0, 0.0, 0.05, 0.2});
  config.network_seed = seed ^ 0x9e3779b97f4a7c15ull;

  // The consistent-hashing baseline constrains placement/topology/prefetch
  // (GroupConfig::validate()); apply it after the draws above so the RNG
  // consumption stays identical for every seed.
  const bool hash_partition =
      config.topology == TopologyKind::kDistributed && rng.next_below(8) == 0;
  if (hash_partition) {
    config.routing = RoutingMode::kHashPartition;
    config.placement = PlacementKind::kAdHoc;
  } else if (rng.next_below(5) == 0) {
    config.prefetch.enabled = true;
    config.prefetch.min_confidence = 0.3;
    config.prefetch.min_observations = 2;
    // Prefetch arms pin placement to ad-hoc: speculative admissions happen
    // at driver-dependent instants, and ad-hoc is the one placement family
    // whose decisions cannot flip on a timestamp shift — so these arms stay
    // under the strict oracle instead of masking real prefetch bugs.
    config.placement = PlacementKind::kAdHoc;
  }

  // EA-family arms run with every latency component zeroed: the staged
  // pipeline then mutates caches at exactly the instants the legacy driver
  // does, so the expiration ages the two sides exchange are bit-identical
  // and a near-tie EA comparison cannot flip on ±stage-delay jitter.
  // Ad-hoc arms are age-independent, so they keep the paper's model and
  // carry the measured-latency == charged-latency law.
  if (config.placement != PlacementKind::kAdHoc) {
    LatencyModel zero;
    zero.local_hit = zero.remote_hit = zero.miss = Duration::zero();
    zero.failed_probe = Duration::zero();
    zero.icp_rtt = Duration::zero();
    zero.local_lookup = Duration::zero();
    config.latency = zero;
  }

  // Pipeline knobs for the event-driven arm. Retries stay off: a retry
  // round re-draws probe losses, legitimately diverging the transport
  // counters from the legacy driver's single round.
  config.pipeline.event_driven = false;
  config.pipeline.icp_timeout = pick(rng, {msec(500), msec(2000)});
  config.pipeline.icp_retries = 0;
  config.pipeline.coalesce = false;

  // Observability off: the oracle diffs outcome counters, and obs work
  // would dominate the corpus runtime.
  config.obs = ObsConfig::disabled();

  Trace trace;
  if (kind == FuzzTraceKind::kSynthetic) {
    SyntheticTraceConfig trace_config;
    trace_config.seed = seed ^ 0xabcdef12345ull;
    trace_config.num_requests = 300 + rng.next_below(501);
    trace_config.num_documents = 60 + rng.next_below(181);
    trace_config.num_users = 8 + static_cast<std::uint32_t>(rng.next_below(25));
    trace_config.span = hours(6);  // irrelevant: respaced below
    trace_config.zipf_alpha = 0.6 + 0.5 * rng.next_double();
    trace_config.max_size = 32 * kKiB;  // keep documents admissible everywhere
    if (rng.next_bool(0.5)) {
      trace_config.repeat_probability = 0.3;
      trace_config.repeat_window = 64;
    }
    trace = generate_synthetic_trace(trace_config);
  } else {
    trace = generate_workload_trace(random_workload_spec(seed, rng));
  }
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    trace.requests[i].at = grid_point(i);
  }
  const std::size_t n = trace.requests.size();
  fuzz_case.trace = std::make_shared<const Trace>(std::move(trace));

  // Faults: flushes and outage boundaries sit at grid + kGrid/2, strictly
  // inside the trace, so they fire between complete request lifecycles and
  // are reached by both drivers (the legacy loop only pumps the event queue
  // up to the last request's timestamp).
  const std::size_t total_caches = config.total_cache_count();
  if (rng.next_bool(0.3)) {
    const std::size_t flush_count = 1 + rng.next_below(2);
    for (std::size_t f = 0; f < flush_count; ++f) {
      FaultPlan::Flush flush;
      flush.at = grid_point(5 + rng.next_below(n - 8)) + kGrid / 2;
      flush.proxy = static_cast<ProxyId>(rng.next_below(total_caches));
      fuzz_case.faults.flushes.push_back(flush);
    }
  }
  if (config.discovery == DiscoveryMode::kIcp && rng.next_bool(0.3)) {
    const std::size_t outage_count = 1 + rng.next_below(2);
    for (std::size_t o = 0; o < outage_count; ++o) {
      const std::size_t start = 1 + rng.next_below(n - 4);
      PeerOutage outage;
      outage.proxy = static_cast<ProxyId>(rng.next_below(total_caches));
      outage.start = grid_point(start) + kGrid / 2;
      outage.end = grid_point(start + 1 + rng.next_below(n - start - 2)) + kGrid / 2;
      fuzz_case.faults.outages.push_back(outage);
    }
  }

  fuzz_case.strict =
      config.icp_loss_probability == 0.0 && fuzz_case.faults.outages.empty();

  fuzz_case.label = "seed=" + std::to_string(seed) + "/p" +
                    std::to_string(config.num_proxies) + "/" +
                    std::string(to_string(config.replacement)) + "/" +
                    (config.placement == PlacementKind::kAdHoc         ? "adhoc"
                     : config.placement == PlacementKind::kEa          ? "ea"
                                                                      : "ea-hyst") +
                    (config.topology == TopologyKind::kHierarchical ? "/hier" : "/dist") +
                    (config.discovery == DiscoveryMode::kDigest ? "/digest" : "/icp") +
                    (config.routing == RoutingMode::kHashPartition ? "/hash" : "") +
                    (config.prefetch.enabled ? "/prefetch" : "") +
                    (config.icp_loss_probability > 0.0 ? "/loss" : "") +
                    (fuzz_case.faults.empty() ? "" : "/faults") +
                    (kind == FuzzTraceKind::kWorkloadDsl ? "/dsl" : "");
  return fuzz_case;
}

std::vector<std::string> diff_outcomes(const SimulationResult& legacy,
                                       const SimulationResult& pipeline, bool strict) {
  std::vector<std::string> mismatches;
  const auto compare = [&mismatches](const char* name, auto a, auto b) {
    if (a != b) {
      mismatches.push_back(std::string(name) + ": legacy=" + std::to_string(a) +
                           " pipeline=" + std::to_string(b));
    }
  };

  // Conservation laws that hold no matter what: every trace request is
  // served exactly once, at its home proxy, for its full size.
  compare("metrics.total_requests", legacy.metrics.total_requests(),
          pipeline.metrics.total_requests());
  compare("metrics.bytes_requested", legacy.metrics.bytes_requested(),
          pipeline.metrics.bytes_requested());
  compare("proxy_stats.size", legacy.proxy_stats.size(), pipeline.proxy_stats.size());
  if (legacy.proxy_stats.size() == pipeline.proxy_stats.size()) {
    for (std::size_t p = 0; p < legacy.proxy_stats.size(); ++p) {
      compare(("proxy[" + std::to_string(p) + "].client_requests").c_str(),
              legacy.proxy_stats[p].client_requests, pipeline.proxy_stats[p].client_requests);
    }
  }

  // Everything below is exact only when no discovery timeout can fire: a
  // timeout resolves the request seconds later than the legacy driver did,
  // and EA placement compares real-valued ages built from those shifted
  // timestamps — near-ties legitimately flip. With no loss and no outages
  // every probe answers within icp_rtt, admission shifts stay bounded by
  // the transfer delays, and the drivers must agree counter for counter.
  if (!strict) return mismatches;

  compare("metrics.local_hits", legacy.metrics.count(RequestOutcome::kLocalHit),
          pipeline.metrics.count(RequestOutcome::kLocalHit));
  compare("metrics.remote_hits", legacy.metrics.count(RequestOutcome::kRemoteHit),
          pipeline.metrics.count(RequestOutcome::kRemoteHit));
  compare("metrics.misses", legacy.metrics.count(RequestOutcome::kMiss),
          pipeline.metrics.count(RequestOutcome::kMiss));
  compare("metrics.local_hit_bytes", legacy.metrics.bytes(RequestOutcome::kLocalHit),
          pipeline.metrics.bytes(RequestOutcome::kLocalHit));
  compare("metrics.remote_hit_bytes", legacy.metrics.bytes(RequestOutcome::kRemoteHit),
          pipeline.metrics.bytes(RequestOutcome::kRemoteHit));
  compare("metrics.miss_bytes", legacy.metrics.bytes(RequestOutcome::kMiss),
          pipeline.metrics.bytes(RequestOutcome::kMiss));
  // Nothing can time out here, so measured latency == the legacy charge.
  compare("metrics.total_latency_ms", legacy.metrics.total_latency().count(),
          pipeline.metrics.total_latency().count());

  compare("transport.icp_queries", legacy.transport.icp_queries,
          pipeline.transport.icp_queries);
  compare("transport.icp_replies", legacy.transport.icp_replies,
          pipeline.transport.icp_replies);
  compare("transport.icp_losses", legacy.transport.icp_losses, pipeline.transport.icp_losses);
  compare("transport.http_requests", legacy.transport.http_requests,
          pipeline.transport.http_requests);
  compare("transport.http_responses", legacy.transport.http_responses,
          pipeline.transport.http_responses);
  compare("transport.failed_probes", legacy.transport.failed_probes,
          pipeline.transport.failed_probes);
  compare("transport.digest_publications", legacy.transport.digest_publications,
          pipeline.transport.digest_publications);
  compare("transport.origin_fetches", legacy.transport.origin_fetches,
          pipeline.transport.origin_fetches);
  compare("transport.total_bytes", legacy.transport.total_bytes(),
          pipeline.transport.total_bytes());

  if (legacy.proxy_stats.size() == pipeline.proxy_stats.size()) {
    for (std::size_t p = 0; p < legacy.proxy_stats.size(); ++p) {
      const ProxyStats& a = legacy.proxy_stats[p];
      const ProxyStats& b = pipeline.proxy_stats[p];
      const std::string prefix = "proxy[" + std::to_string(p) + "].";
      compare((prefix + "local_hits").c_str(), a.local_hits, b.local_hits);
      compare((prefix + "remote_fetches_served").c_str(), a.remote_fetches_served,
              b.remote_fetches_served);
      compare((prefix + "copies_stored").c_str(), a.copies_stored, b.copies_stored);
      compare((prefix + "copies_declined").c_str(), a.copies_declined, b.copies_declined);
      compare((prefix + "promotions_suppressed").c_str(), a.promotions_suppressed,
              b.promotions_suppressed);
    }
  }

  compare("occupancy.total_resident_copies", legacy.total_resident_copies,
          pipeline.total_resident_copies);
  compare("occupancy.unique_resident_documents", legacy.unique_resident_documents,
          pipeline.unique_resident_documents);

  compare("prefetch.issued", legacy.prefetch.issued, pipeline.prefetch.issued);
  compare("prefetch.useful", legacy.prefetch.useful, pipeline.prefetch.useful);
  return mismatches;
}

std::string FuzzDiff::summary() const {
  std::string text = label + ": ";
  if (ok()) return text + "ok";
  if (!mismatches.empty()) {
    text += std::to_string(mismatches.size()) + " counter mismatch(es)";
    for (const std::string& m : mismatches) text += "\n    " + m;
  }
  if (!legacy_validation.ok()) text += "\n  legacy invariants: " + legacy_validation.summary();
  if (!pipeline_validation.ok()) {
    text += "\n  pipeline invariants: " + pipeline_validation.summary();
  }
  return text;
}

namespace {

[[nodiscard]] FuzzDiff pair_up(const FuzzCase& fuzz_case, const SimulationResult& legacy,
                               const SimulationResult& pipeline) {
  FuzzDiff diff;
  diff.label = fuzz_case.label;
  diff.mismatches = diff_outcomes(legacy, pipeline, fuzz_case.strict);
  diff.legacy_validation = legacy.validation;
  diff.pipeline_validation = pipeline.validation;
  return diff;
}

[[nodiscard]] GroupConfig pipeline_arm(const FuzzCase& fuzz_case) {
  GroupConfig config = fuzz_case.config;
  config.pipeline.event_driven = true;
  return config;
}

}  // namespace

FuzzDiff run_fuzz_case(const FuzzCase& fuzz_case) {
  SimulationOptions options;
  options.faults = fuzz_case.faults;
  options.validate = true;
  const SimulationResult legacy = run_simulation(*fuzz_case.trace, fuzz_case.config, options);
  const SimulationResult pipeline =
      run_simulation(*fuzz_case.trace, pipeline_arm(fuzz_case), options);
  return pair_up(fuzz_case, legacy, pipeline);
}

// Corpus-sharding threading contract (DESIGN.md §11): every shared object
// crossing a worker boundary here is immutable — each FuzzCase's trace is a
// shared_ptr<const Trace> built before the pool starts, and configs are
// copied into SweepJobs by value. Workers therefore share nothing mutable;
// the verdict is assembled on the caller's thread from run() results, which
// SweepRunner returns in submission order regardless of worker count (the
// property SimFuzzTest.CorpusVerdictIndependentOfWorkerCount pins, and the
// run_tsan_pipeline.sh corpus re-proves under ThreadSanitizer at jobs=8).
std::vector<FuzzDiff> run_fuzz_corpus(std::uint64_t base_seed, std::size_t count,
                                      std::size_t jobs, bool include_workload) {
  std::vector<FuzzCase> cases;
  cases.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const FuzzTraceKind kind = include_workload && (i % 2 == 1)
                                   ? FuzzTraceKind::kWorkloadDsl
                                   : FuzzTraceKind::kSynthetic;
    cases.push_back(make_fuzz_case(base_seed + i, kind));
  }

  SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.validate = true;
  SweepRunner runner(sweep_options);
  for (const FuzzCase& fuzz_case : cases) {
    SimulationOptions options;
    options.faults = fuzz_case.faults;
    runner.add(fuzz_case.label + "/legacy", fuzz_case.config, fuzz_case.trace, options);
    runner.add(fuzz_case.label + "/pipeline", pipeline_arm(fuzz_case), fuzz_case.trace,
               options);
  }
  const std::vector<SweepRunResult> runs = runner.run();

  std::vector<FuzzDiff> diffs;
  diffs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    diffs.push_back(pair_up(cases[i], runs[2 * i].result, runs[2 * i + 1].result));
  }
  return diffs;
}

}  // namespace eacache
