// Runtime invariant net over a simulation run (DESIGN.md §10).
//
// The InvariantChecker attaches to a CacheGroup through the existing
// observer seams — the placement auditor hook and per-store eviction
// observers — plus read-only accessors, and audits the laws the paper's
// quantities must obey:
//
//   * counts partition:  local hits + remote hits + misses == requests;
//   * byte accounting:   resident_bytes == Σ resident document sizes, and
//                        never exceeds the cache's capacity;
//   * LRU stack property: a capacity victim was the least-recently-promoted
//                        resident (sampled; O(residents) per sample);
//   * Eq. 5:             the reported CacheExpAge equals the mean victim
//                        DocExpAge over the configured window, recomputed
//                        by an independent shadow implementation;
//   * §3.3 placement:    a requester with wire ages stores a copy iff
//                        EA(req) >= EA(resp) (scheme-dependent rule), the
//                        only legal declines being an already-resident copy
//                        or a document bigger than the whole cache;
//   * time monotonicity: eviction and hook timestamps never run backwards;
//   * pipeline laws:     started == completed == trace requests, coalesced
//                        joins bounded by outstanding fetches, retry/timeout
//                        counters consistent with the config.
//
// Checks are always compiled; a run opts in via SimulationOptions::validate
// (or any bench's --validate flag). Failures aggregate into a
// ValidationReport — the checker never throws or aborts the run.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "ea/expiration_age.h"
#include "group/cache_group.h"
#include "group/pipeline_config.h"
#include "storage/eviction.h"
#include "core/validation_report.h"

namespace eacache {

class InvariantChecker final : public PlacementAuditor {
 public:
  struct Options {
    /// Run the O(residents) heavy checks every Nth hook call. They also run
    /// unconditionally at finish(), so a light stride only coarsens WHEN a
    /// corruption is pinpointed, never whether it is detected.
    std::size_t heavy_stride = 4096;
    /// Audit the LRU stack property on every Nth capacity eviction.
    std::size_t lru_stack_stride = 64;
  };

  /// Attaches to `group` (placement auditor + one eviction observer per
  /// cache). The checker must be destroyed — or the group must outlive it —
  /// before the group goes away; destruction detaches the auditor.
  explicit InvariantChecker(CacheGroup& group);
  InvariantChecker(CacheGroup& group, Options options);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Driver hooks. The legacy driver calls after_request() once per served
  /// request; the event-driven driver calls it at request start and
  /// after_step() after every event-queue step.
  void after_request(const Request& request, TimePoint now);
  void after_step(TimePoint now);

  /// End-of-run laws. `pipeline` is null for legacy runs.
  void finish(std::size_t trace_requests, const PipelineStats* pipeline);

  [[nodiscard]] const ValidationReport& report() const { return report_; }
  [[nodiscard]] ValidationReport take_report() { return std::move(report_); }

  // PlacementAuditor
  void on_placement(ProxyId proxy, DocumentId document, TimePoint at, Bytes size,
                    std::optional<ExpAge> requester_age, std::optional<ExpAge> responder_age,
                    bool accepted) override;

 private:
  /// Per-cache shadow state: an independent re-implementation of the
  /// Eq. 5 window arithmetic plus the cheap per-eviction laws.
  struct CacheAudit final : public EvictionObserver {
    InvariantChecker* owner = nullptr;
    ProxyId id = 0;
    const CacheStore* store = nullptr;  // cached: on_eviction runs per victim
    AgeForm form = AgeForm::kLru;
    bool lru_stack = false;  // policy is plain LRU: stack property applies

    // Shadow Eq. 5 state (mirrors ea/contention.cpp independently).
    WindowKind window_kind = WindowKind::kVictimCount;
    Duration time_window{};
    std::uint64_t victims = 0;
    double lifetime_sum_ms = 0.0;
    std::vector<double> ring;
    std::size_t ring_next = 0;
    std::size_t ring_filled = 0;
    double ring_sum = 0.0;
    struct Sample {
      TimePoint at;
      double age_ms;
    };
    std::deque<Sample> samples;
    double window_sum = 0.0;

    TimePoint last_evict = kSimEpoch;
    std::uint64_t capacity_evictions = 0;

    void on_eviction(const EvictionRecord& record) override;
    /// The CacheExpAge the shadow state predicts at `now`.
    [[nodiscard]] ExpAge shadow_age(TimePoint now);
  };

  void note_check() { ++report_.checks; }
  void violate(const char* law, TimePoint at, std::string detail);
  void hook(TimePoint now);
  void check_counts_partition(TimePoint now);
  void heavy_checks(TimePoint now);
  /// Does the configured placement scheme tell the requester to keep a copy?
  [[nodiscard]] bool requester_rule_allows(ExpAge requester, ExpAge responder) const;

  CacheGroup* group_;
  Options options_;
  ValidationReport report_;
  std::vector<std::unique_ptr<CacheAudit>> audits_;
  std::uint64_t hook_calls_ = 0;
  std::uint64_t requests_seen_ = 0;
  TimePoint last_now_ = kSimEpoch;
};

}  // namespace eacache
