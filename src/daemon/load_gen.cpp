#include "daemon/load_gen.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

namespace eacache {

namespace {

std::chrono::nanoseconds to_ns(Duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d);
}

}  // namespace

LoadGen::LoadGen(DaemonGroup& group, Clock& clock, FakeClock* manual, DaemonMode mode,
                 LoadGenOptions options, FaultPlan faults)
    : group_(group),
      clock_(clock),
      manual_(manual),
      mode_(mode),
      options_(options),
      faults_(std::move(faults)) {
  if (mode_ == DaemonMode::kSmokeReplay && manual_ == nullptr) {
    throw std::invalid_argument("LoadGen: smoke replay needs the group's FakeClock");
  }
}

LoadGenReport LoadGen::replay(const Trace& trace) {
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("LoadGen::replay: trace must be time-ordered");
  }
  VectorTraceSource source(trace);
  return replay(source);
}

LoadGenReport LoadGen::replay(TraceSource& source) {
  LoadGenReport report;
  const auto wall_started = std::chrono::steady_clock::now();
  const ProxyId completions = group_.load_endpoint();
  InMemoryTransport& wire = group_.wire();
  std::uint64_t next_id = 1;  // ids correlate completions; flushes use them too

  std::vector<FaultPlan::Flush> flushes = faults_.flushes;
  std::stable_sort(flushes.begin(), flushes.end(),
                   [](const FaultPlan::Flush& a, const FaultPlan::Flush& b) {
                     return a.at < b.at;
                   });
  std::size_t next_flush = 0;

  std::vector<TimePoint> dumps = faults_.flight_dumps;
  std::stable_sort(dumps.begin(), dumps.end());
  std::size_t next_dump = 0;
  bool saturation_reported = false;
  const auto fire_flight_dump = [&] {
    if (options_.on_flight_dump) options_.on_flight_dump();
  };

  const auto submit_flush = [&](const FaultPlan::Flush& flush) {
    WireMessage message;
    message.kind = WireMessage::Kind::kFlush;
    message.to = flush.proxy;
    message.request_id = next_id++;
    message.stamp = flush.at;
    if (manual_ != nullptr && flush.at > manual_->now()) manual_->set(flush.at);
    wire.send(flush.proxy, message);
    ++report.flushes_injected;
    // Closed loop: a flush must land before any request submitted after it
    // (cross-mailbox sends are unordered). Only smoke replay gets here —
    // daemon-run validation rejects wall-clock FaultPlans.
    const auto ack = wire.receive(completions, to_ns(options_.drain_timeout));
    if (!ack || ack->request_id != message.request_id) {
      throw std::runtime_error("LoadGen: flush acknowledgement timed out");
    }
  };

  TimePoint trace_start = kSimEpoch;
  TimePoint last = kSimEpoch;
  Request request;
  for (std::uint64_t i = 0; source.next(request); ++i) {
    if (i == 0) {
      trace_start = request.at;
    } else if (request.at < last) {
      throw std::invalid_argument(
          "LoadGen::replay: source must deliver time-ordered requests");
    }
    last = request.at;
    // Same ordering as EventQueue::run_until(request.at): every fault due
    // at or before this request's stamp fires first.
    while (next_flush < flushes.size() && flushes[next_flush].at <= request.at) {
      submit_flush(flushes[next_flush++]);
    }
    while (next_dump < dumps.size() && dumps[next_dump] <= request.at) {
      if (manual_ != nullptr && dumps[next_dump] > manual_->now()) {
        manual_->set(dumps[next_dump]);
      }
      ++next_dump;
      fire_flight_dump();
    }

    WireMessage message;
    message.kind = WireMessage::Kind::kClientRequest;
    message.document = request.document;
    message.body_size = request.size;
    message.user = request.user;
    message.request_id = next_id++;
    message.to = group_.home_proxy(request.user);

    if (mode_ == DaemonMode::kSmokeReplay) {
      if (request.at > manual_->now()) manual_->set(request.at);
      message.stamp = request.at;
      wire.send(message.to, message);
      ++report.submitted;
      const auto done = wire.receive(completions, to_ns(options_.drain_timeout));
      if (!done || done->request_id != message.request_id) {
        throw std::runtime_error("LoadGen: completion timed out for request " +
                                 std::to_string(message.request_id));
      }
      ++report.completed;
    } else {
      const Duration offset =
          options_.pacing == PacingMode::kTraceSpeedup
              ? Duration{static_cast<SimClock::rep>(
                    static_cast<double>((request.at - trace_start).count()) /
                    options_.speedup)}
              : Duration{static_cast<SimClock::rep>(
                    static_cast<double>(i) * 1000.0 / options_.requests_per_second)};
      clock_.sleep_until(trace_start + offset);
      // Opportunistic drain first, then enforce the admission window: when
      // the offered rate outruns the workers, block for completions rather
      // than piling an unbounded backlog into the mailboxes.
      while (wire.try_receive(completions)) ++report.completed;
      while (report.submitted - report.completed >= options_.max_in_flight) {
        // Overload forensics: the first time the window stays saturated
        // past the grace period, capture a flight-recorder dump, then keep
        // waiting out the full drain timeout before declaring a wedge.
        if (options_.on_flight_dump && !saturation_reported) {
          if (const auto done =
                  wire.receive(completions, to_ns(options_.saturation_grace))) {
            (void)done;
            ++report.completed;
            continue;
          }
          saturation_reported = true;
          fire_flight_dump();
          continue;
        }
        if (!wire.receive(completions, to_ns(options_.drain_timeout))) {
          throw std::runtime_error("LoadGen: admission window wait timed out with " +
                                   std::to_string(report.submitted - report.completed) +
                                   " requests in flight");
        }
        ++report.completed;
      }
      message.stamp = clock_.now();
      wire.send(message.to, message);
      ++report.submitted;
    }
  }
  while (next_flush < flushes.size()) submit_flush(flushes[next_flush++]);
  while (next_dump < dumps.size()) {
    if (manual_ != nullptr && dumps[next_dump] > manual_->now()) {
      manual_->set(dumps[next_dump]);
    }
    ++next_dump;
    fire_flight_dump();
  }

  // Await the in-flight tail (wall-clock mode; smoke replay is already
  // fully drained). A shortfall after the timeout is reported, not thrown —
  // the caller decides whether a straggler is fatal.
  const auto drain_deadline = std::chrono::steady_clock::now() + to_ns(options_.drain_timeout);
  while (report.completed < report.submitted) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= drain_deadline) break;
    if (wire.receive(completions, std::chrono::duration_cast<std::chrono::nanoseconds>(
                                      drain_deadline - now))) {
      ++report.completed;
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_started).count();
  return report;
}

}  // namespace eacache
