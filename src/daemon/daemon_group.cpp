#include "daemon/daemon_group.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/hash.h"

namespace eacache {

namespace {

constexpr std::chrono::milliseconds kMailboxPoll{20};

/// Simulated-epoch-relative milliseconds, the span-schema time base.
std::int64_t span_ms(TimePoint at) {
  return static_cast<std::int64_t>((at - kSimEpoch).count());
}

/// Per-cache byte budgets, identical to CacheGroup's split: equal shares of
/// the aggregate unless explicit weights are given.
std::vector<Bytes> split_budgets(const GroupConfig& config, std::size_t total_caches) {
  std::vector<Bytes> budgets(total_caches, config.aggregate_capacity / total_caches);
  if (!config.capacity_weights.empty()) {
    double weight_sum = 0.0;
    for (const double w : config.capacity_weights) weight_sum += w;
    for (std::size_t p = 0; p < total_caches; ++p) {
      budgets[p] = static_cast<Bytes>(static_cast<double>(config.aggregate_capacity) *
                                      config.capacity_weights[p] / weight_sum);
    }
  }
  return budgets;
}

}  // namespace

DaemonGroup::DaemonGroup(const GroupConfig& config, Clock& clock, DaemonMode mode,
                         std::size_t flight_capacity)
    : config_(config),
      clock_(clock),
      mode_(mode),
      placement_(config.placement_override
                     ? config.placement_override
                     : std::shared_ptr<const PlacementPolicy>(
                           make_placement(config.placement, config.ea_hysteresis))),
      wire_(config.num_proxies + 2) {
  {
    const std::vector<std::string> errors = config_.validate_for_daemon();
    if (!errors.empty()) {
      std::string message = "invalid daemon GroupConfig: ";
      for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i > 0) message += "; ";
        message += errors[i];
      }
      throw std::invalid_argument(message);
    }
  }

  const std::size_t total = config_.num_proxies;
  const std::vector<Bytes> budgets = split_budgets(config_, total);
  workers_.reserve(total);
  for (std::size_t p = 0; p < total; ++p) {
    auto worker = std::make_unique<Worker>();
    worker->registry = std::make_unique<MetricRegistry>(config_.obs.registry);
    worker->proxy = std::make_unique<ProxyCache>(
        static_cast<ProxyId>(p), budgets[p], make_policy(config_.replacement), config_.window,
        placement_.get(), /*digest_config=*/nullptr, worker->registry.get());
    worker->transport = Transport(config_.wire);
    worker->transport.bind_registry(worker->registry.get(), total);
    if (worker->registry->enabled()) {
      // Same group-wide metric names CacheGroup registers, so the merged
      // registry dump is name-compatible with a simulated run's.
      worker->obs_requests = worker->registry->counter("group.requests");
      worker->obs_icp_queries = worker->registry->counter("group.icp.queries");
      worker->obs_icp_replies = worker->registry->counter("group.icp.replies");
      worker->obs_icp_losses = worker->registry->counter("group.icp.losses");
      worker->obs_sibling_fetches = worker->registry->counter("group.sibling_fetches");
      worker->obs_parent_fetches = worker->registry->counter("group.parent_fetches");
      worker->obs_origin_fetches = worker->registry->counter("group.origin_fetches");
      worker->obs_request_bytes = worker->registry->histogram(
          "group.request_bytes", 0.0, static_cast<double>(kMiB), 64);
    }
    worker->flight = TraceLog(flight_capacity);
    workers_.push_back(std::move(worker));
  }
}

DaemonGroup::~DaemonGroup() { stop(); }

void DaemonGroup::start() {
  if (started_) throw std::logic_error("DaemonGroup::start: already started");
  started_ = true;
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    workers_[p]->thread = std::thread([this, p] { worker_main(p); });
  }
}

void DaemonGroup::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    WireMessage bye;
    bye.kind = WireMessage::Kind::kShutdown;
    bye.to = static_cast<ProxyId>(p);
    wire_.send(static_cast<ProxyId>(p), bye);
  }
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

ProxyId DaemonGroup::home_proxy(UserId user) const {
  return static_cast<ProxyId>(mix64(user) % workers_.size());
}

TimePoint DaemonGroup::step_now(const WireMessage& message) const {
  return mode_ == DaemonMode::kSmokeReplay ? message.stamp : clock_.now();
}

void DaemonGroup::worker_main(std::size_t index) {
  Worker& w = *workers_[index];
  for (;;) {
    std::optional<WireMessage> message =
        wire_.receive(static_cast<ProxyId>(index), kMailboxPoll);
    if (!message) continue;
    const TimePoint now = step_now(*message);
    switch (message->kind) {
      case WireMessage::Kind::kShutdown:
        return;
      case WireMessage::Kind::kFlush: {
        w.proxy->flush(now);
        // Flushes are acknowledged so the closed-loop driver can order them
        // against requests served by OTHER workers (mailbox FIFO only
        // orders messages to the same endpoint).
        PendingRequest ack;
        ack.id = message->request_id;
        ack.document = message->document;
        complete(w, ack);
        break;
      }
      case WireMessage::Kind::kClientRequest:
        handle_client_request(w, *message, now);
        break;
      case WireMessage::Kind::kIcpQuery:
        handle_icp_query(w, *message, now);
        break;
      case WireMessage::Kind::kIcpReply:
        handle_icp_reply(w, *message, now);
        break;
      case WireMessage::Kind::kHttpRequest:
        handle_http_request(w, *message, now);
        break;
      case WireMessage::Kind::kHttpResponse:
        handle_http_response(w, *message, now);
        break;
      case WireMessage::Kind::kStatsRequest:
        handle_stats_request(w, *message);
        break;
      case WireMessage::Kind::kCompletion:
      case WireMessage::Kind::kStatsReply:
        break;  // only the load/stats endpoints receive these
    }
  }
}

std::uint64_t DaemonGroup::mint_span(Worker& w) {
  return ((static_cast<std::uint64_t>(w.proxy->id()) + 1) << 40) | ++w.next_span;
}

void DaemonGroup::record_complete_span(Worker& w, const PendingRequest& ctx, TimePoint now,
                                       std::int64_t outcome) {
  if (!w.flight.enabled() || ctx.root_span == 0) return;
  SpanEvent done;
  done.request = ctx.id;
  done.at_ms = span_ms(now);
  done.document = ctx.document;
  done.value = outcome;
  done.span = mint_span(w);
  done.parent_span = static_cast<std::int64_t>(ctx.root_span);
  done.proxy = w.proxy->id();
  done.hop = 0;
  done.kind = SpanKind::kComplete;
  w.flight.record(done);
}

void DaemonGroup::handle_stats_request(Worker& w, const WireMessage& message) {
  {
    MutexLock lock(w.stats.mutex);
    WorkerStatsSample& sample = w.stats.data;
    sample.proxy = w.proxy->id();
    sample.registry = w.registry->snapshot();
    sample.metrics = w.metrics;
    sample.transport = w.transport.stats();
    sample.in_flight = w.pending.size();
    sample.resident_bytes = w.proxy->store().resident_bytes();
    sample.resident_docs = w.proxy->store().resident_count();
    // peek_: a telemetry sample must not bump ea.age_queries (obs-is-free).
    sample.expiration_age = w.proxy->peek_expiration_age(clock_.now());
    sample.spans_recorded = w.flight.recorded();
    sample.spans_dropped = w.flight.dropped();
    if (message.want_spans) {
      sample.spans = w.flight.events();
    } else {
      sample.spans.clear();
    }
  }
  WireMessage ack;
  ack.kind = WireMessage::Kind::kStatsReply;
  ack.from = w.proxy->id();
  ack.to = message.from;
  ack.request_id = message.request_id;  // the sampler's epoch stamp
  wire_.send(ack.to, ack);
}

std::optional<std::vector<DaemonGroup::WorkerStatsSample>> DaemonGroup::sample_stats(
    bool want_spans, std::chrono::nanoseconds timeout) {
  MutexLock lock(stats_mutex_);
  const std::uint64_t epoch = ++stats_epoch_;
  for (std::size_t p = 0; p < workers_.size(); ++p) {
    WireMessage request;
    request.kind = WireMessage::Kind::kStatsRequest;
    request.from = stats_endpoint();
    request.to = static_cast<ProxyId>(p);
    request.request_id = epoch;
    request.want_spans = want_spans;
    wire_.send(request.to, request);
  }

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<bool> acked(workers_.size(), false);
  std::size_t acks = 0;
  while (acks < workers_.size()) {
    const auto remaining = deadline - std::chrono::steady_clock::now();
    if (remaining <= std::chrono::nanoseconds::zero()) return std::nullopt;
    const std::optional<WireMessage> reply = wire_.receive(stats_endpoint(), remaining);
    if (!reply) return std::nullopt;
    if (reply->kind != WireMessage::Kind::kStatsReply || reply->request_id != epoch) {
      continue;  // straggler from a timed-out earlier round
    }
    if (reply->from < workers_.size() && !acked[reply->from]) {
      acked[reply->from] = true;
      ++acks;
    }
  }

  std::vector<WorkerStatsSample> samples;
  samples.reserve(workers_.size());
  for (const auto& worker : workers_) {
    MutexLock slot(worker->stats.mutex);
    samples.push_back(worker->stats.data);
  }
  return samples;
}

void DaemonGroup::handle_client_request(Worker& w, const WireMessage& message, TimePoint now) {
  w.proxy->note_client_request();
  w.obs_requests.inc();
  w.obs_request_bytes.observe(static_cast<double>(message.body_size));

  PendingRequest ctx;
  ctx.id = message.request_id;
  ctx.document = message.document;
  ctx.size = message.body_size;
  ctx.stamp = message.stamp;

  if (w.flight.enabled()) {
    // Root of this request's cross-hop span tree (hop 0, no parent).
    ctx.root_span = mint_span(w);
    SpanEvent arrival;
    arrival.request = ctx.id;
    arrival.at_ms = span_ms(now);
    arrival.document = ctx.document;
    arrival.value = static_cast<std::int64_t>(ctx.size);
    arrival.span = ctx.root_span;
    arrival.proxy = w.proxy->id();
    arrival.hop = 0;
    arrival.kind = SpanKind::kArrival;
    w.flight.record(arrival);
  }

  // 1. Local lookup: a promoting hit if resident.
  if (const auto size = w.proxy->serve_local(message.document, now)) {
    w.metrics.record(RequestOutcome::kLocalHit, *size, config_.latency.local_hit);
    if (w.flight.enabled()) {
      SpanEvent hit;
      hit.request = ctx.id;
      hit.at_ms = span_ms(now);
      hit.document = ctx.document;
      hit.value = static_cast<std::int64_t>(*size);
      hit.span = mint_span(w);
      hit.parent_span = static_cast<std::int64_t>(ctx.root_span);
      hit.proxy = w.proxy->id();
      hit.hop = 0;
      hit.kind = SpanKind::kLocalHit;
      w.flight.record(hit);
    }
    record_complete_span(w, ctx, now, 0);  // RequestOutcome::kLocalHit
    complete(w, ctx);
    return;
  }

  // 2. ICP fan-out to every sibling; replies drive the rest of the request
  // from handle_icp_reply.
  if (workers_.size() == 1) {
    resolve_origin(w, ctx, now);
    return;
  }
  ctx.awaiting_replies = workers_.size() - 1;
  const auto [it, inserted] = w.pending.emplace(ctx.id, std::move(ctx));
  if (!inserted) throw std::logic_error("DaemonGroup: duplicate request id");
  for (std::size_t target = 0; target < workers_.size(); ++target) {
    if (target == w.proxy->id()) continue;
    const auto to = static_cast<ProxyId>(target);
    w.transport.record_icp_query(IcpQuery{w.proxy->id(), to, message.document});
    w.obs_icp_queries.inc();
    WireMessage query;
    query.kind = WireMessage::Kind::kIcpQuery;
    query.from = w.proxy->id();
    query.to = to;
    query.document = message.document;
    query.request_id = message.request_id;
    query.stamp = message.stamp;
    // Cross-hop trace header: the peer's probe span links under our root.
    query.span_id = it->second.root_span;
    query.hop = 1;
    wire_.send(to, query);
  }
}

void DaemonGroup::handle_icp_query(Worker& w, const WireMessage& message, TimePoint now) {
  (void)now;
  // Presence probe, no cache-state side effects — same split CacheGroup
  // uses (contains + note_icp_answer rather than answer_icp, so future
  // freshness-aware daemons keep the same seam).
  const bool hit = w.proxy->store().contains(message.document);
  w.proxy->note_icp_answer(hit);
  w.transport.record_icp_reply(IcpReply{w.proxy->id(), message.from, message.document, hit});
  w.obs_icp_replies.inc();
  if (w.flight.enabled() && message.span_id != 0) {
    SpanEvent probe;
    probe.request = message.request_id;
    probe.at_ms = span_ms(now);
    probe.document = message.document;
    probe.span = mint_span(w);
    probe.parent_span = static_cast<std::int64_t>(message.span_id);
    probe.proxy = w.proxy->id();
    probe.peer = static_cast<std::int32_t>(message.from);
    probe.hop = message.hop;
    probe.kind = SpanKind::kIcpProbe;
    probe.flag = hit ? 1 : 0;
    w.flight.record(probe);
  }
  WireMessage reply = message;
  reply.kind = WireMessage::Kind::kIcpReply;
  reply.from = w.proxy->id();
  reply.to = message.from;
  reply.hit = hit;
  wire_.send(reply.to, reply);
}

void DaemonGroup::handle_icp_reply(Worker& w, const WireMessage& message, TimePoint now) {
  const auto it = w.pending.find(message.request_id);
  if (it == w.pending.end()) return;  // request already resolved (shutdown race)
  PendingRequest& ctx = it->second;
  --ctx.awaiting_replies;
  if (message.hit) ctx.hits.push_back(message.from);
  if (ctx.awaiting_replies > 0) return;

  // All replies in: fetch best-candidate-first by ring distance, exactly
  // CacheGroup::sort_by_ring_distance's order.
  ctx.candidates = std::move(ctx.hits);
  const std::size_t n = workers_.size();
  const ProxyId requester = w.proxy->id();
  std::sort(ctx.candidates.begin(), ctx.candidates.end(), [&](ProxyId a, ProxyId b) {
    return (a + n - requester) % n < (b + n - requester) % n;
  });
  advance_candidates(w, ctx, now);
}

void DaemonGroup::advance_candidates(Worker& w, PendingRequest& ctx, TimePoint now) {
  if (ctx.next_candidate >= ctx.candidates.size()) {
    resolve_origin(w, ctx, now);
    w.pending.erase(ctx.id);
    return;
  }
  const ProxyId responder = ctx.candidates[ctx.next_candidate++];

  HttpRequest fetch;
  fetch.from = w.proxy->id();
  fetch.to = responder;
  fetch.document = ctx.document;
  if (placement_->kind() != PlacementKind::kAdHoc) {
    fetch.requester_age = w.proxy->expiration_age(now);
  }
  w.transport.record_http_request(fetch);
  w.obs_sibling_fetches.inc();

  WireMessage message;
  message.kind = WireMessage::Kind::kHttpRequest;
  message.from = fetch.from;
  message.to = responder;
  message.document = ctx.document;
  message.request_id = ctx.id;
  message.stamp = ctx.stamp;
  message.requester_age = fetch.requester_age;
  message.span_id = ctx.root_span;
  message.hop = 1;
  wire_.send(responder, message);
}

void DaemonGroup::handle_http_request(Worker& w, const WireMessage& message, TimePoint now) {
  HttpRequest fetch;
  fetch.from = message.from;
  fetch.to = w.proxy->id();
  fetch.document = message.document;
  fetch.requester_age = message.requester_age;
  // serve_fetch (not serve_remote): in wall-clock mode the copy a positive
  // ICP reply advertised may be evicted before this fetch lands, and the
  // responder then answers found=false instead of asserting.
  const HttpResponse response = w.proxy->serve_fetch(fetch, now);
  w.transport.record_http_response(response);
  if (w.flight.enabled() && message.span_id != 0) {
    SpanEvent serve;
    serve.request = message.request_id;
    serve.at_ms = span_ms(now);
    serve.document = message.document;
    serve.value = static_cast<std::int64_t>(response.body_size);
    serve.span = mint_span(w);
    serve.parent_span = static_cast<std::int64_t>(message.span_id);
    serve.proxy = w.proxy->id();
    serve.peer = static_cast<std::int32_t>(message.from);
    serve.hop = message.hop;
    serve.kind = SpanKind::kSiblingFetch;
    serve.flag = response.found ? 1 : 0;
    w.flight.record(serve);
  }

  WireMessage out = message;
  out.kind = WireMessage::Kind::kHttpResponse;
  out.from = w.proxy->id();
  out.to = message.from;
  out.found = response.found;
  out.body_size = response.body_size;
  out.source = response.source;
  out.responder_age = response.responder_age;
  out.version = response.version;
  out.validated_at = response.validated_at;
  wire_.send(out.to, out);
}

void DaemonGroup::handle_http_response(Worker& w, const WireMessage& message, TimePoint now) {
  const auto it = w.pending.find(message.request_id);
  if (it == w.pending.end()) return;
  PendingRequest& ctx = it->second;

  if (!message.found) {
    ctx.probe_penalty += config_.latency.failed_probe;
    advance_candidates(w, ctx, now);
    return;
  }

  w.proxy->consider_caching(Document{ctx.document, message.body_size, message.version},
                            message.responder_age, now);
  w.metrics.record(RequestOutcome::kRemoteHit, message.body_size,
                   config_.latency.remote_hit + ctx.probe_penalty);
  record_complete_span(w, ctx, now, 1);  // RequestOutcome::kRemoteHit
  complete(w, ctx);
  w.pending.erase(message.request_id);
}

void DaemonGroup::resolve_origin(Worker& w, PendingRequest& ctx, TimePoint now) {
  const Document document{ctx.document, ctx.size, 0};
  w.transport.record_origin_fetch(w.proxy->id(), document.size);
  w.obs_origin_fetches.inc();
  if (!w.proxy->store().contains(document.id)) {
    w.proxy->cache_after_origin_fetch(document, now);
  }
  if (w.flight.enabled() && ctx.root_span != 0) {
    SpanEvent origin;
    origin.request = ctx.id;
    origin.at_ms = span_ms(now);
    origin.document = ctx.document;
    origin.value = static_cast<std::int64_t>(document.size);
    origin.span = mint_span(w);
    origin.parent_span = static_cast<std::int64_t>(ctx.root_span);
    origin.proxy = w.proxy->id();
    origin.hop = 0;
    origin.kind = SpanKind::kOriginFetch;
    w.flight.record(origin);
  }
  w.metrics.record(RequestOutcome::kMiss, document.size,
                   config_.latency.miss + ctx.probe_penalty);
  record_complete_span(w, ctx, now, 2);  // RequestOutcome::kMiss
  complete(w, ctx);
}

void DaemonGroup::complete(Worker& w, const PendingRequest& ctx) {
  WireMessage done;
  done.kind = WireMessage::Kind::kCompletion;
  done.from = w.proxy->id();
  done.to = load_endpoint();
  done.document = ctx.document;
  done.request_id = ctx.id;
  wire_.send(done.to, done);
}

RunResult DaemonGroup::collect_result() {
  if (started_ && !stopped_) {
    throw std::logic_error("DaemonGroup::collect_result: stop() the workers first");
  }
  RunResult result;

  // Merge the per-worker shards. Safe without locks: stop() joined every
  // worker, and thread join orders all their writes before these reads.
  MetricRegistry registry(config_.obs.registry);
  for (const auto& worker : workers_) {
    result.metrics.merge(worker->metrics);
    result.transport.merge(worker->transport.stats());
    registry.merge(*worker->registry);
  }

  // End-of-run gauges, mirroring CacheGroup::export_final_gauges.
  if (registry.enabled()) {
    for (const auto& worker : workers_) {
      const std::string prefix = "proxy." + std::to_string(worker->proxy->id()) + ".";
      registry.gauge(prefix + "resident_bytes")
          .set(static_cast<double>(worker->proxy->store().resident_bytes()));
      registry.gauge(prefix + "resident_docs")
          .set(static_cast<double>(worker->proxy->store().resident_count()));
    }
  }

  double sum_ms = 0.0;
  std::size_t finite = 0;
  std::size_t total_copies = 0;
  std::unordered_map<DocumentId, bool> seen;
  for (const auto& worker : workers_) {
    const ProxyCache& proxy = *worker->proxy;
    const ExpAge age = proxy.contention().lifetime_average();
    if (!age.is_infinite()) {
      sum_ms += age.millis();
      ++finite;
    }
    result.per_cache_expiration_age.push_back(age);
    result.proxy_stats.push_back(proxy.stats());
    total_copies += proxy.store().resident_count();
    for (const DocumentId id : proxy.store().resident_ids()) seen[id] = true;
  }
  result.average_cache_expiration_age =
      finite == 0 ? ExpAge::infinite()
                  : ExpAge::from_millis(sum_ms / static_cast<double>(finite));
  result.total_resident_copies = total_copies;
  result.unique_resident_documents = seen.size();
  result.replication_factor =
      seen.empty() ? 0.0
                   : static_cast<double>(total_copies) / static_cast<double>(seen.size());
  if (registry.enabled()) {
    registry.gauge("group.replication_factor").set(result.replication_factor);
  }
  result.registry = registry.snapshot();
  return result;
}

}  // namespace eacache
