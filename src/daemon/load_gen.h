// LoadGen: replays a trace against a live DaemonGroup.
//
// Two pacing disciplines, matching DaemonMode:
//  * closed-loop smoke replay — pin the FakeClock to each request's trace
//    stamp, submit, block for the completion. One request in flight at a
//    time, so the run is deterministic; FaultPlan flushes are injected
//    between requests at their trace instants with the same at <= next.at
//    ordering the simulator's event queue uses.
//  * open-loop wall clock — submit each request at its compressed trace
//    instant (span / speedup) or at a fixed rate, stamping with the live
//    clock; completions are drained opportunistically and the tail is
//    awaited with a bounded drain timeout. An admission window caps the
//    number of requests in flight, so when the offered rate exceeds what
//    the workers can absorb the generator degrades to bounded closed-loop
//    instead of flooding the mailboxes (unbounded backlog destroys the
//    trace's temporal locality: duplicate requests race ahead of caching
//    and the measured hit rate collapses).
#pragma once

#include <cstdint>
#include <functional>

#include "core/fault_plan.h"
#include "daemon/daemon_group.h"
#include "trace/trace.h"
#include "trace/trace_source.h"

namespace eacache {

/// How open-loop submission instants are derived.
///  * kTraceSpeedup — request i lands at trace_start + (at_i - at_0)/speedup.
///  * kFixedRate    — request i lands at trace_start + i/requests_per_second,
///                    ignoring trace timestamps (rate-controlled soak).
enum class PacingMode { kTraceSpeedup, kFixedRate };

struct LoadGenOptions {
  PacingMode pacing = PacingMode::kTraceSpeedup;
  /// Trace-time compression for kTraceSpeedup: 3600 replays an hour of
  /// trace per wall-clock second. Must be > 0.
  double speedup = 1.0;
  /// Submission rate for kFixedRate. Must be > 0 — a zero rate never
  /// submits anything and the run would hang (rejected by validation).
  double requests_per_second = 0.0;
  /// How long to wait for in-flight completions after the last submission
  /// (wall-clock mode) or for any single completion (smoke mode).
  Duration drain_timeout = sec(30);
  /// Wall-clock admission window: the generator blocks for completions
  /// before submitting while this many requests are in flight. Must be
  /// >= 1 (rejected by validation otherwise); smoke replay ignores it
  /// (effectively 1 by construction).
  std::uint64_t max_in_flight = 32;
  /// Flight-recorder trigger. Invoked from the generator thread (a) at
  /// each FaultPlan::flight_dumps instant during smoke replay, and (b) at
  /// most ONCE per wall-clock run when the admission window stays
  /// saturated past `saturation_grace` — the overload signal. Null
  /// disables both. The callback must not submit load of its own.
  std::function<void()> on_flight_dump;
  /// How long a saturated admission window waits before declaring overload
  /// and firing on_flight_dump (wall-clock mode only).
  Duration saturation_grace = sec(2);
};

struct LoadGenReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t flushes_injected = 0;
  /// Wall-clock driving time, submission of the first request to the last
  /// completion received.
  double wall_seconds = 0.0;
};

class LoadGen {
 public:
  /// `manual` must be the FakeClock the group runs on for kSmokeReplay mode
  /// and may be null for kWallClock (where `clock` paces the submissions).
  LoadGen(DaemonGroup& group, Clock& clock, FakeClock* manual, DaemonMode mode,
          LoadGenOptions options, FaultPlan faults = {});

  /// Replay the (time-ordered) trace, blocking until every submitted
  /// request completed or the drain timeout expired. Smoke mode throws
  /// std::runtime_error on a completion timeout (a wedged worker);
  /// wall-clock mode reports the shortfall in the returned counts instead.
  LoadGenReport replay(const Trace& trace);

  /// Streaming replay: identical semantics, but requests are pulled one at
  /// a time from `source`, so a workload-DSL soak never materializes its
  /// trace. The monotone-time contract is enforced incrementally (throws
  /// std::invalid_argument on a regressing stamp). The vector overload
  /// delegates here through VectorTraceSource.
  LoadGenReport replay(TraceSource& source);

 private:
  DaemonGroup& group_;
  Clock& clock_;
  FakeClock* manual_;
  DaemonMode mode_;
  LoadGenOptions options_;
  FaultPlan faults_;
};

}  // namespace eacache
