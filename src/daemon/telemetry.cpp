#include "daemon/telemetry.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/logging.h"
#include "core/run_result_json.h"
#include "metrics/json.h"
#include "obs/prometheus.h"

namespace eacache {

namespace {

std::chrono::nanoseconds to_ns(Duration d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d);
}

std::int64_t epoch_ms(TimePoint at) {
  return static_cast<std::int64_t>((at - kSimEpoch).count());
}

}  // namespace

StatsPoller::StatsPoller(DaemonGroup& group, Options options)
    : group_(group), options_(std::move(options)) {}

StatsPoller::~StatsPoller() { stop(); }

void StatsPoller::start() {
  if (started_) throw std::logic_error("StatsPoller::start: already started");
  started_ = true;
  thread_ = std::thread([this] { thread_main(); });
}

void StatsPoller::stop() {
  {
    MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsPoller::thread_main() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_requested_) return;
      wake_.wait_for(mutex_, to_ns(options_.period));
      if (stop_requested_) return;
    }
    poll_once();
  }
}

bool StatsPoller::poll_once() {
  const auto samples = group_.sample_stats(/*want_spans=*/false, to_ns(options_.sample_timeout));
  if (!samples) return false;

  TelemetrySnapshot snapshot;
  snapshot.at_ms = epoch_ms(group_.clock().now());
  MetricRegistry merged(true);
  GroupMetrics metrics;
  std::vector<MetricRegistry> baselines;
  baselines.reserve(samples->size());
  for (const DaemonGroup::WorkerStatsSample& sample : *samples) {
    merged.merge(sample.registry);
    metrics.merge(sample.metrics);
    snapshot.in_flight += sample.in_flight;
    snapshot.resident_bytes += sample.resident_bytes;
    snapshot.resident_docs += sample.resident_docs;
    baselines.push_back(sample.registry);
  }
  snapshot.total_requests = metrics.total_requests();
  snapshot.hit_rate = metrics.hit_rate();
  const double hits = snapshot.hit_rate * static_cast<double>(snapshot.total_requests);
  const std::uint64_t icp_queries = merged.counter_value("group.icp.queries");
  const std::uint64_t origin_fetches = merged.counter_value("group.origin_fetches");

  {
    MutexLock lock(mutex_);
    snapshot.tick = latest_.tick + 1;
    if (latest_.tick > 0 && snapshot.at_ms > latest_.at_ms) {
      // Windowed deltas against the previous tick; totals are monotone, so
      // the deltas are non-negative whenever the clock moved forward.
      const double window =
          static_cast<double>(snapshot.at_ms - latest_.at_ms) / 1000.0;
      snapshot.window_seconds = window;
      const double prev_requests = static_cast<double>(latest_.total_requests);
      const double prev_hits =
          latest_.hit_rate * static_cast<double>(latest_.total_requests);
      const double delta_requests =
          static_cast<double>(snapshot.total_requests) - prev_requests;
      snapshot.requests_per_second = delta_requests / window;
      snapshot.window_hit_rate =
          delta_requests > 0.0 ? (hits - prev_hits) / delta_requests : 0.0;
      snapshot.icp_queries_per_second =
          static_cast<double>(icp_queries -
                              latest_.registry.counter_value("group.icp.queries")) /
          window;
      snapshot.origin_fetches_per_second =
          static_cast<double>(origin_fetches -
                              latest_.registry.counter_value("group.origin_fetches")) /
          window;
    }

    // Fold the derived view into the merged registry so both exporters
    // serialize one object (names documented in DESIGN.md §11/§13).
    merged.gauge("telemetry.window_seconds").set(snapshot.window_seconds);
    merged.gauge("telemetry.requests_per_second").set(snapshot.requests_per_second);
    merged.gauge("telemetry.hit_rate").set(snapshot.hit_rate);
    merged.gauge("telemetry.window_hit_rate").set(snapshot.window_hit_rate);
    merged.gauge("telemetry.icp_queries_per_second").set(snapshot.icp_queries_per_second);
    merged.gauge("telemetry.origin_fetches_per_second")
        .set(snapshot.origin_fetches_per_second);
    merged.gauge("telemetry.in_flight").set(static_cast<double>(snapshot.in_flight));
    merged.gauge("telemetry.resident_bytes")
        .set(static_cast<double>(snapshot.resident_bytes));
    merged.gauge("telemetry.resident_docs")
        .set(static_cast<double>(snapshot.resident_docs));
    merged.gauge("telemetry.tick").set(static_cast<double>(snapshot.tick));
    snapshot.registry = merged.snapshot();

    latest_ = snapshot;
    baselines_ = std::move(baselines);
  }
  if (options_.on_sample) options_.on_sample(snapshot);
  return true;
}

TelemetrySnapshot StatsPoller::latest() const {
  MutexLock lock(mutex_);
  return latest_;
}

std::uint64_t StatsPoller::ticks() const {
  MutexLock lock(mutex_);
  return latest_.tick;
}

std::vector<MetricRegistry> StatsPoller::worker_baselines() const {
  MutexLock lock(mutex_);
  return baselines_;
}

void write_telemetry_json(std::ostream& out, const TelemetrySnapshot& snapshot) {
  JsonWriter json(out);
  json.begin_object();
  json.field("at_ms", snapshot.at_ms);
  json.field("tick", snapshot.tick);
  json.field("window_seconds", snapshot.window_seconds);
  json.key("derived").begin_object();
  json.field("total_requests", snapshot.total_requests);
  json.field("in_flight", snapshot.in_flight);
  json.field("resident_bytes", snapshot.resident_bytes);
  json.field("resident_docs", snapshot.resident_docs);
  json.field("hit_rate", snapshot.hit_rate);
  json.field("window_hit_rate", snapshot.window_hit_rate);
  json.field("requests_per_second", snapshot.requests_per_second);
  json.field("icp_queries_per_second", snapshot.icp_queries_per_second);
  json.field("origin_fetches_per_second", snapshot.origin_fetches_per_second);
  json.end_object();
  json.key("registry");
  append_metric_registry(json, snapshot.registry);
  json.end_object();
  out << '\n';
}

std::string telemetry_snapshot_to_json(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  write_telemetry_json(out, snapshot);
  return out.str();
}

void write_telemetry_prometheus(std::ostream& out, const TelemetrySnapshot& snapshot) {
  write_prometheus_exposition(out, snapshot.registry);
}

bool write_stats_file(const std::string& path, const TelemetrySnapshot& snapshot,
                      const std::string& format) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      EACACHE_LOG_WARN("telemetry") << "cannot open " << tmp << " for writing";
      return false;
    }
    if (format == "prom") {
      write_telemetry_prometheus(out, snapshot);
    } else {
      write_telemetry_json(out, snapshot);
    }
    out.flush();
    if (!out) {
      EACACHE_LOG_WARN("telemetry") << "short write to " << tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    EACACHE_LOG_WARN("telemetry") << "rename " << tmp << " -> " << path << " failed: "
                                  << std::strerror(errno);
    return false;
  }
  return true;
}

StatsHttpHandler::Response StatsHttpHandler::handle(std::string_view path) const {
  if (const std::size_t query = path.find('?'); query != std::string_view::npos) {
    path = path.substr(0, query);
  }
  Response response;
  if (path == "/metrics") {
    std::ostringstream body;
    write_telemetry_prometheus(body, poller_->latest());
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = body.str();
    return response;
  }
  if (path == "/stats.json" || path == "/stats") {
    response.content_type = "application/json";
    response.body = telemetry_snapshot_to_json(poller_->latest());
    return response;
  }
  if (path == "/") {
    response.content_type = "text/plain; charset=utf-8";
    response.body = "eacache daemon telemetry\n  /metrics     Prometheus exposition\n"
                    "  /stats.json  JSON snapshot\n";
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "not found\n";
  return response;
}

namespace {

/// Write all of `text`, tolerating short writes; false on error.
bool write_all(int fd, std::string_view text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
  }
  return "Internal Server Error";
}

}  // namespace

StatsHttpServer::StatsHttpServer(StatsHttpHandler handler, std::uint16_t port)
    : handler_(handler) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("StatsHttpServer: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("StatsHttpServer: bind/listen 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
}

StatsHttpServer::~StatsHttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatsHttpServer::start() {
  if (started_) throw std::logic_error("StatsHttpServer::start: already started");
  started_ = true;
  thread_ = std::thread([this] { serve_loop(); });
  EACACHE_LOG_INFO("telemetry") << "stats endpoint listening on 127.0.0.1:" << port_;
}

void StatsHttpServer::stop() {
  {
    MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  if (thread_.joinable()) thread_.join();
}

void StatsHttpServer::serve_loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_requested_) return;
    }
    // Short poll timeout so stop() is honoured promptly even with no
    // clients — a plain blocking accept() would pin the thread forever.
    pollfd waiter{};
    waiter.fd = listen_fd_;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void StatsHttpServer::serve_one(int client_fd) {
  // Bound how long a stalled client can hold the (single) serving thread.
  timeval read_timeout{};
  read_timeout.tv_sec = 2;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &read_timeout, sizeof(read_timeout));

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 && request.find("\r\n") == std::string::npos) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  StatsHttpHandler::Response response;
  const std::size_t method_end = request.find(' ');
  const std::size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : request.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos ||
      request.compare(0, method_end, "GET") != 0) {
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "only GET is supported\n";
  } else {
    const std::string_view path(request.data() + method_end + 1,
                                path_end - method_end - 1);
    response = handler_.handle(path);
  }

  std::ostringstream head;
  head << "HTTP/1.0 " << response.status << ' ' << status_reason(response.status)
       << "\r\nContent-Type: " << response.content_type
       << "\r\nContent-Length: " << response.body.size()
       << "\r\nConnection: close\r\n\r\n";
  if (write_all(client_fd, head.str())) write_all(client_fd, response.body);
}

std::size_t write_flight_dump(std::ostream& out,
                              const std::vector<DaemonGroup::WorkerStatsSample>& samples,
                              const std::vector<MetricRegistry>* baselines) {
  std::size_t span_lines = 0;
  // Span lines first (trace JSONL schema, cross-hop fields included) ...
  for (const DaemonGroup::WorkerStatsSample& sample : samples) {
    for (const SpanEvent& span : sample.spans) {
      write_span_jsonl(out, span);
      out << '\n';
      ++span_lines;
    }
  }
  // ... then one delta line per counter and one line per gauge, tagged with
  // the owning worker. Deltas are against the poller's last tick when a
  // baseline is available, otherwise they equal the absolute value.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const DaemonGroup::WorkerStatsSample& sample = samples[i];
    const MetricRegistry* baseline =
        baselines != nullptr && i < baselines->size() ? &(*baselines)[i] : nullptr;
    {
      JsonWriter json(out);
      json.begin_object();
      json.field("worker", static_cast<std::uint64_t>(sample.proxy));
      json.field("in_flight", sample.in_flight);
      json.field("spans_recorded", sample.spans_recorded);
      json.field("spans_dropped", sample.spans_dropped);
      json.end_object();
      out << '\n';
    }
    for (const auto& [name, value] : sample.registry.counters()) {
      const std::uint64_t base = baseline != nullptr ? baseline->counter_value(name) : 0;
      JsonWriter json(out);
      json.begin_object();
      json.field("worker", static_cast<std::uint64_t>(sample.proxy));
      json.field("metric", name);
      json.field("value", value);
      json.field("delta", value >= base ? value - base : value);
      json.end_object();
      out << '\n';
    }
    for (const auto& [name, value] : sample.registry.gauges()) {
      JsonWriter json(out);
      json.begin_object();
      json.field("worker", static_cast<std::uint64_t>(sample.proxy));
      json.field("gauge", name);
      json.field("value", value);
      json.end_object();
      out << '\n';
    }
  }
  return span_lines;
}

std::optional<std::size_t> dump_flight_recording(DaemonGroup& group, const StatsPoller* poller,
                                                 const std::string& path) {
  const auto samples = group.sample_stats(/*want_spans=*/true, to_ns(sec(5)));
  if (!samples) {
    EACACHE_LOG_WARN("telemetry") << "flight dump: stats sample timed out";
    return std::nullopt;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    EACACHE_LOG_WARN("telemetry") << "flight dump: cannot open " << path;
    return std::nullopt;
  }
  const std::vector<MetricRegistry> baselines =
      poller != nullptr ? poller->worker_baselines() : std::vector<MetricRegistry>{};
  const std::size_t spans = write_flight_dump(out, *samples, &baselines);
  out.flush();
  if (!out) {
    EACACHE_LOG_WARN("telemetry") << "flight dump: short write to " << path;
    return std::nullopt;
  }
  EACACHE_LOG_INFO("telemetry") << "flight dump: " << spans << " spans -> " << path;
  return spans;
}

}  // namespace eacache
