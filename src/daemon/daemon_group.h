// DaemonGroup: the cooperative cache group as N live proxy instances, one
// worker thread each, exchanging protocol messages over an in-memory wire
// instead of being orchestrated by the simulator.
//
// Concurrency design (checked by the DESIGN.md §11 analysis stack and the
// TSan pipeline's daemon stage):
//  * SHARE NOTHING between workers. Each worker exclusively owns its
//    ProxyCache, its accounting Transport, its GroupMetrics and its
//    MetricRegistry — no per-cache locks exist because no cache is ever
//    touched by two threads. The only shared mutable state is the
//    InMemoryTransport's locked mailboxes and the Clock (both annotated).
//  * All cross-worker interaction is message passing: a local miss fans out
//    kIcpQuery envelopes, peers answer kIcpReply, the home worker fetches
//    over kHttpRequest/kHttpResponse. Workers never block waiting for a
//    specific peer — every handler runs to completion and returns to the
//    mailbox loop, so mutual probing cannot deadlock.
//  * Per-request progress lives in a per-worker table keyed by request id
//    (requests are pinned to their home worker, so the table is single-
//    owner too). Many requests can be in flight at once in wall-clock mode.
//  * collect_result() merges the per-worker shards AFTER stop() has joined
//    every thread; thread join is the only synchronization the merge needs.
//
// The serve semantics deliberately mirror CacheGroup::serve for the config
// subset daemon-run validation admits (flat ICP group, no coherence /
// prefetch / losses): local lookup -> ICP fan-out -> ring-distance-ordered
// sibling fetch with EA piggybacking -> origin fallback, charging the
// paper's per-outcome aggregate latencies. In closed-loop smoke replay
// (FakeClock pinned to trace stamps) the run is deterministic and its
// RunResult serializes byte-identically to run_simulation's — the
// extraction proof tests/daemon/daemon_vs_sim_test.cpp pins that.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/clock.h"
#include "core/inmemory_transport.h"
#include "core/run_result.h"
#include "group/cache_group.h"

namespace eacache {

/// How the load generator paces submissions and how workers read "now".
///  * kSmokeReplay — closed loop, one request in flight, a FakeClock pinned
///    to each request's trace stamp: deterministic, comparable to the
///    simulator byte for byte.
///  * kWallClock  — open loop against a SteadyClock: requests are submitted
///    at real instants (trace timestamps compressed by a speedup factor, or
///    a fixed rate) and overlap in flight.
enum class DaemonMode { kSmokeReplay, kWallClock };

class DaemonGroup {
 public:
  /// `config` must satisfy GroupConfig::validate_for_daemon() (the
  /// constructor throws otherwise); `clock` must outlive the group.
  DaemonGroup(const GroupConfig& config, Clock& clock, DaemonMode mode);
  ~DaemonGroup();

  DaemonGroup(const DaemonGroup&) = delete;
  DaemonGroup& operator=(const DaemonGroup&) = delete;

  /// Spawn one worker thread per proxy. Call once.
  void start();
  /// Deliver kShutdown to every worker and join. Idempotent. The caller
  /// must have drained its in-flight requests first (completions for
  /// requests still in flight at shutdown are lost, not corrupted).
  void stop();

  [[nodiscard]] std::size_t num_proxies() const { return workers_.size(); }
  /// Same stable user->proxy pinning as CacheGroup::home_proxy.
  [[nodiscard]] ProxyId home_proxy(UserId user) const;
  /// The extra wire endpoint reserved for the load generator's completions.
  [[nodiscard]] ProxyId load_endpoint() const {
    return static_cast<ProxyId>(workers_.size());
  }
  [[nodiscard]] InMemoryTransport& wire() { return wire_; }

  /// Assemble the RunResult from the per-worker shards. Requires stop() —
  /// the merge is unsynchronized by design and relies on thread join.
  [[nodiscard]] RunResult collect_result();

 private:
  /// One request's progress at its home worker (single-owner, no locks).
  struct PendingRequest {
    std::uint64_t id = 0;
    DocumentId document = 0;
    Bytes size = 0;            // trace request size (origin fetch body)
    TimePoint stamp{};         // arrival instant echoed on every hop
    std::size_t awaiting_replies = 0;
    std::vector<ProxyId> hits;       // positive ICP answers so far
    std::vector<ProxyId> candidates; // ring-distance order, tried in turn
    std::size_t next_candidate = 0;
    Duration probe_penalty = Duration::zero();
  };

  /// Everything one worker thread owns exclusively. The registry is built
  /// first so the proxy and transport can register handles into it; all
  /// registration happens on the constructing thread before start().
  struct Worker {
    std::unique_ptr<MetricRegistry> registry;
    std::unique_ptr<ProxyCache> proxy;
    Transport transport;
    GroupMetrics metrics;
    std::unordered_map<std::uint64_t, PendingRequest> pending;

    MetricRegistry::Counter obs_requests;
    MetricRegistry::Counter obs_icp_queries;
    MetricRegistry::Counter obs_icp_replies;
    MetricRegistry::Counter obs_icp_losses;
    MetricRegistry::Counter obs_sibling_fetches;
    MetricRegistry::Counter obs_parent_fetches;
    MetricRegistry::Counter obs_origin_fetches;
    MetricRegistry::HistogramHandle obs_request_bytes;

    std::thread thread;
  };

  void worker_main(std::size_t index);
  /// "now" for one protocol step: the request's trace stamp in smoke replay
  /// (deterministic), the live clock in wall-clock mode.
  [[nodiscard]] TimePoint step_now(const WireMessage& message) const;

  void handle_client_request(Worker& w, const WireMessage& message, TimePoint now);
  void handle_icp_query(Worker& w, const WireMessage& message, TimePoint now);
  void handle_icp_reply(Worker& w, const WireMessage& message, TimePoint now);
  void handle_http_request(Worker& w, const WireMessage& message, TimePoint now);
  void handle_http_response(Worker& w, const WireMessage& message, TimePoint now);
  /// Send the next candidate fetch, or fall through to the origin.
  void advance_candidates(Worker& w, PendingRequest& ctx, TimePoint now);
  void resolve_origin(Worker& w, PendingRequest& ctx, TimePoint now);
  void complete(Worker& w, const PendingRequest& ctx);

  GroupConfig config_;
  Clock& clock_;
  DaemonMode mode_;
  std::shared_ptr<const PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Worker>> workers_;
  InMemoryTransport wire_;  // workers' mailboxes + the load endpoint
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace eacache
