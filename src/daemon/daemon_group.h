// DaemonGroup: the cooperative cache group as N live proxy instances, one
// worker thread each, exchanging protocol messages over an in-memory wire
// instead of being orchestrated by the simulator.
//
// Concurrency design (checked by the DESIGN.md §11 analysis stack and the
// TSan pipeline's daemon stage):
//  * SHARE NOTHING between workers. Each worker exclusively owns its
//    ProxyCache, its accounting Transport, its GroupMetrics and its
//    MetricRegistry — no per-cache locks exist because no cache is ever
//    touched by two threads. The only shared mutable state is the
//    InMemoryTransport's locked mailboxes and the Clock (both annotated).
//  * All cross-worker interaction is message passing: a local miss fans out
//    kIcpQuery envelopes, peers answer kIcpReply, the home worker fetches
//    over kHttpRequest/kHttpResponse. Workers never block waiting for a
//    specific peer — every handler runs to completion and returns to the
//    mailbox loop, so mutual probing cannot deadlock.
//  * Per-request progress lives in a per-worker table keyed by request id
//    (requests are pinned to their home worker, so the table is single-
//    owner too). Many requests can be in flight at once in wall-clock mode.
//  * collect_result() merges the per-worker shards AFTER stop() has joined
//    every thread; thread join is the only synchronization the merge needs.
//
// The serve semantics deliberately mirror CacheGroup::serve for the config
// subset daemon-run validation admits (flat ICP group, no coherence /
// prefetch / losses): local lookup -> ICP fan-out -> ring-distance-ordered
// sibling fetch with EA piggybacking -> origin fallback, charging the
// paper's per-outcome aggregate latencies. In closed-loop smoke replay
// (FakeClock pinned to trace stamps) the run is deterministic and its
// RunResult serializes byte-identically to run_simulation's — the
// extraction proof tests/daemon/daemon_vs_sim_test.cpp pins that.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/clock.h"
#include "core/inmemory_transport.h"
#include "core/run_result.h"
#include "group/cache_group.h"
#include "obs/trace_log.h"

namespace eacache {

/// How the load generator paces submissions and how workers read "now".
///  * kSmokeReplay — closed loop, one request in flight, a FakeClock pinned
///    to each request's trace stamp: deterministic, comparable to the
///    simulator byte for byte.
///  * kWallClock  — open loop against a SteadyClock: requests are submitted
///    at real instants (trace timestamps compressed by a speedup factor, or
///    a fixed rate) and overlap in flight.
enum class DaemonMode { kSmokeReplay, kWallClock };

class DaemonGroup {
 public:
  /// One worker's state as published through the stats seam: a registry
  /// snapshot plus the cheap live scalars the poller derives rates from.
  /// `spans` is filled only when the sample asked for the flight ring.
  struct WorkerStatsSample {
    ProxyId proxy = 0;
    MetricRegistry registry;
    GroupMetrics metrics;
    TransportStats transport;
    std::uint64_t in_flight = 0;       // requests pending at this worker
    Bytes resident_bytes = 0;
    std::uint64_t resident_docs = 0;
    ExpAge expiration_age = ExpAge::infinite();
    std::vector<SpanEvent> spans;      // flight-recorder ring, oldest first
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;
  };

  /// `config` must satisfy GroupConfig::validate_for_daemon() (the
  /// constructor throws otherwise); `clock` must outlive the group.
  /// `flight_capacity` sizes each worker's bounded recent-span ring for the
  /// flight recorder (0 disables span recording entirely — the default, and
  /// the zero-overhead state smoke-replay byte-identity is pinned against).
  DaemonGroup(const GroupConfig& config, Clock& clock, DaemonMode mode,
              std::size_t flight_capacity = 0);
  ~DaemonGroup();

  DaemonGroup(const DaemonGroup&) = delete;
  DaemonGroup& operator=(const DaemonGroup&) = delete;

  /// Spawn one worker thread per proxy. Call once.
  void start();
  /// Deliver kShutdown to every worker and join. Idempotent. The caller
  /// must have drained its in-flight requests first (completions for
  /// requests still in flight at shutdown are lost, not corrupted).
  void stop();

  [[nodiscard]] std::size_t num_proxies() const { return workers_.size(); }
  /// Same stable user->proxy pinning as CacheGroup::home_proxy.
  [[nodiscard]] ProxyId home_proxy(UserId user) const;
  /// The extra wire endpoint reserved for the load generator's completions.
  [[nodiscard]] ProxyId load_endpoint() const {
    return static_cast<ProxyId>(workers_.size());
  }
  /// The extra wire endpoint the stats sampler receives kStatsReply on.
  [[nodiscard]] ProxyId stats_endpoint() const {
    return static_cast<ProxyId>(workers_.size() + 1);
  }
  [[nodiscard]] InMemoryTransport& wire() { return wire_; }

  /// Live stats sample: send every worker a kStatsRequest, wait for all
  /// acks, then copy the published per-worker samples. The request is
  /// handled at the top of each worker's mailbox loop like any other
  /// message, so the hot path takes no locks and the snapshot of each
  /// worker is internally consistent (between two requests, never mid-
  /// request). Returns nullopt if any worker fails to ack within `timeout`
  /// (e.g. the group is stopped). Thread-safe: concurrent samplers (poller
  /// tick vs flight dump) serialize on an internal mutex.
  [[nodiscard]] std::optional<std::vector<WorkerStatsSample>> sample_stats(
      bool want_spans, std::chrono::nanoseconds timeout);

  [[nodiscard]] DaemonMode mode() const { return mode_; }
  /// The clock the group runs on (the poller stamps snapshots with it).
  [[nodiscard]] Clock& clock() const { return clock_; }

  /// Assemble the RunResult from the per-worker shards. Requires stop() —
  /// the merge is unsynchronized by design and relies on thread join.
  [[nodiscard]] RunResult collect_result();

 private:
  /// One request's progress at its home worker (single-owner, no locks).
  struct PendingRequest {
    std::uint64_t id = 0;
    DocumentId document = 0;
    Bytes size = 0;            // trace request size (origin fetch body)
    TimePoint stamp{};         // arrival instant echoed on every hop
    std::size_t awaiting_replies = 0;
    std::vector<ProxyId> hits;       // positive ICP answers so far
    std::vector<ProxyId> candidates; // ring-distance order, tried in turn
    std::size_t next_candidate = 0;
    Duration probe_penalty = Duration::zero();
    std::uint64_t root_span = 0;  // cross-hop trace root (0 = tracing off)
  };

  /// Everything one worker thread owns exclusively. The registry is built
  /// first so the proxy and transport can register handles into it; all
  /// registration happens on the constructing thread before start().
  struct Worker {
    std::unique_ptr<MetricRegistry> registry;
    std::unique_ptr<ProxyCache> proxy;
    Transport transport;
    GroupMetrics metrics;
    std::unordered_map<std::uint64_t, PendingRequest> pending;

    MetricRegistry::Counter obs_requests;
    MetricRegistry::Counter obs_icp_queries;
    MetricRegistry::Counter obs_icp_replies;
    MetricRegistry::Counter obs_icp_losses;
    MetricRegistry::Counter obs_sibling_fetches;
    MetricRegistry::Counter obs_parent_fetches;
    MetricRegistry::Counter obs_origin_fetches;
    MetricRegistry::HistogramHandle obs_request_bytes;

    // Flight recorder: bounded ring of this worker's recent spans, plus the
    // per-worker span-id counter. Both single-owner like everything above.
    TraceLog flight;
    std::uint64_t next_span = 0;

    // The one piece of worker state another thread may read: the stats
    // sample the worker publishes when it handles kStatsRequest. The worker
    // only touches it inside that handler, so the mutex is never contended
    // on the request hot path.
    struct StatsSlot {
      Mutex mutex;
      WorkerStatsSample data EACACHE_GUARDED_BY(mutex);
    };
    StatsSlot stats;

    std::thread thread;
  };

  void worker_main(std::size_t index);
  /// "now" for one protocol step: the request's trace stamp in smoke replay
  /// (deterministic), the live clock in wall-clock mode.
  [[nodiscard]] TimePoint step_now(const WireMessage& message) const;

  /// Mint a span id unique across workers without shared state: the worker
  /// id in the high bits, a per-worker counter below. Never returns 0 (the
  /// "no trace identity" sentinel).
  [[nodiscard]] static std::uint64_t mint_span(Worker& w);
  /// Record the kComplete span under the request's root (no-op when the
  /// flight ring is off or the request predates it).
  static void record_complete_span(Worker& w, const PendingRequest& ctx, TimePoint now,
                                   std::int64_t outcome);
  void handle_stats_request(Worker& w, const WireMessage& message);

  void handle_client_request(Worker& w, const WireMessage& message, TimePoint now);
  void handle_icp_query(Worker& w, const WireMessage& message, TimePoint now);
  void handle_icp_reply(Worker& w, const WireMessage& message, TimePoint now);
  void handle_http_request(Worker& w, const WireMessage& message, TimePoint now);
  void handle_http_response(Worker& w, const WireMessage& message, TimePoint now);
  /// Send the next candidate fetch, or fall through to the origin.
  void advance_candidates(Worker& w, PendingRequest& ctx, TimePoint now);
  void resolve_origin(Worker& w, PendingRequest& ctx, TimePoint now);
  void complete(Worker& w, const PendingRequest& ctx);

  GroupConfig config_;
  Clock& clock_;
  DaemonMode mode_;
  std::shared_ptr<const PlacementPolicy> placement_;
  std::vector<std::unique_ptr<Worker>> workers_;
  InMemoryTransport wire_;  // workers' mailboxes + load and stats endpoints
  bool started_ = false;
  bool stopped_ = false;

  // Serializes concurrent sample_stats callers (poller tick vs flight
  // dump): both share the stats endpoint's mailbox, so only one sample may
  // be in flight. The epoch stamps each round's kStatsRequest so a reply
  // straggling in after a timeout is recognized as stale and dropped.
  Mutex stats_mutex_;
  std::uint64_t stats_epoch_ EACACHE_GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace eacache
