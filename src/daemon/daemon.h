// run_daemon: the daemon-mode counterpart of sim/simulator.h's
// run_simulation. Builds a DaemonGroup (N proxy worker threads over the
// in-memory wire), replays the trace through a LoadGen, and assembles the
// SAME RunResult schema the simulator produces — core/run_result_json.h
// serializes both, so plotting scripts and goldens consume either driver's
// output unchanged.
#pragma once

#include <string>
#include <vector>

#include "core/fault_plan.h"
#include "core/run_result.h"
#include "daemon/daemon_group.h"
#include "daemon/load_gen.h"
#include "trace/trace.h"

namespace eacache {

struct DaemonOptions {
  DaemonMode mode = DaemonMode::kSmokeReplay;
  LoadGenOptions load;
  /// Declarative faults. Only flushes, and only in smoke replay (timestamps
  /// are trace instants; a wall-clock run cannot honour them) — anything
  /// else is rejected by validate_daemon_run.
  FaultPlan faults;
};

/// Every rule a daemon run would violate, aggregated in a stable order:
/// GroupConfig::validate_for_daemon() first, then the option rules
/// (zero-rate or non-positive pacing, wall-clock FaultPlans, outage
/// injection, non-positive drain timeout). Empty means runnable.
[[nodiscard]] std::vector<std::string> validate_daemon_run(const GroupConfig& config,
                                                           const DaemonOptions& options);

/// Throwing wrapper over validate_daemon_run (std::invalid_argument with
/// every violation "; "-joined), mirroring GroupConfig::validate_or_throw.
void validate_daemon_run_or_throw(const GroupConfig& config, const DaemonOptions& options);

/// Run `trace` through a fresh daemon group built from `config`. The trace
/// must be time-ordered. When `report` is non-null it receives the load
/// generator's submission/completion accounting; when `timings` is non-null
/// it receives the wall-clock phase split (drive vs report).
[[nodiscard]] RunResult run_daemon(const Trace& trace, const GroupConfig& config,
                                   const DaemonOptions& options = {},
                                   LoadGenReport* report = nullptr,
                                   PhaseTimings* timings = nullptr);

}  // namespace eacache
