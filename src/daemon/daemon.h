// run_daemon: the daemon-mode counterpart of sim/simulator.h's
// run_simulation. Builds a DaemonGroup (N proxy worker threads over the
// in-memory wire), replays the trace through a LoadGen, and assembles the
// SAME RunResult schema the simulator produces — core/run_result_json.h
// serializes both, so plotting scripts and goldens consume either driver's
// output unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fault_plan.h"
#include "core/run_result.h"
#include "core/run_spec.h"
#include "daemon/daemon_group.h"
#include "daemon/load_gen.h"
#include "daemon/telemetry.h"
#include "trace/trace.h"

namespace eacache {

/// Live telemetry plane knobs (DESIGN.md §13). The poller/exporters are
/// wall-clock-only (a smoke replay has no live wall time to poll on); the
/// flight recorder works in both modes — FaultPlan::flight_dumps instants
/// in smoke replay, admission-window saturation in wall-clock runs.
struct TelemetryOptions {
  /// Per-worker flight-recorder ring capacity (recent spans). 0 disables
  /// span recording entirely — the request hot path skips all span work.
  std::size_t flight_capacity = 0;
  /// StatsPoller tick period and per-tick worker-ack timeout.
  Duration stats_period = msec(1000);
  Duration sample_timeout = sec(5);
  /// Atomic-rename file exporter target; empty disables. `stats_format`
  /// selects the serialization: "json" or "prom".
  std::string stats_out;
  std::string stats_format = "json";
  /// Loopback HTTP endpoint (/metrics, /stats.json). Negative disables;
  /// 0 binds an ephemeral port, reported through `bound_port`.
  int stats_port = -1;
  /// Where flight-recorder dumps land (truncating); empty disables the
  /// dump triggers even when the ring is recording.
  std::string flight_out;
  /// Per-tick observer, called from the poller thread after the file
  /// export (stderr one-liners live here).
  std::function<void(const TelemetrySnapshot&)> on_sample;
  /// When non-null, receives the HTTP endpoint's actual port once bound.
  std::uint16_t* bound_port = nullptr;

  /// Any consumer of live snapshots configured?
  [[nodiscard]] bool poller_enabled() const {
    return !stats_out.empty() || stats_port >= 0 || static_cast<bool>(on_sample);
  }
};

struct DaemonOptions {
  DaemonMode mode = DaemonMode::kSmokeReplay;
  LoadGenOptions load;
  /// Declarative faults. Only flushes + flight-dump instants, and only in
  /// smoke replay (timestamps are trace instants; a wall-clock run cannot
  /// honour them) — anything else is rejected by validate_daemon_run.
  FaultPlan faults;
  TelemetryOptions telemetry;
};

/// Every rule a daemon run would violate, aggregated in a stable order:
/// `RunSpec::validate(RunTarget::kDaemon)` first (the one validation entry
/// point — group rules plus the per-run knobs a daemon cannot carry), then
/// the option rules (zero-rate or non-positive pacing, wall-clock
/// FaultPlans, outage injection, non-positive drain timeout). Empty means
/// runnable. Faults belong on the RunSpec; DaemonOptions::faults must be
/// left empty with this overload.
[[nodiscard]] std::vector<std::string> validate_daemon_run(const RunSpec& spec,
                                                           const DaemonOptions& options);

/// DEPRECATED pre-RunSpec shape, kept one release: wraps `config` into a
/// RunSpec and validates with DaemonOptions::faults still honoured.
[[nodiscard]] std::vector<std::string> validate_daemon_run(const GroupConfig& config,
                                                           const DaemonOptions& options);

/// Throwing wrappers over validate_daemon_run (std::invalid_argument with
/// every violation "; "-joined), mirroring RunSpec::validate_or_throw.
void validate_daemon_run_or_throw(const RunSpec& spec, const DaemonOptions& options);
void validate_daemon_run_or_throw(const GroupConfig& config, const DaemonOptions& options);

/// Run `trace` through a fresh daemon group built from `spec.group`, with
/// `spec.faults` as the fault plan. The trace must be time-ordered. When
/// `report` is non-null it receives the load generator's submission/
/// completion accounting; when `timings` is non-null it receives the
/// wall-clock phase split (drive vs report).
[[nodiscard]] RunResult run_daemon(const Trace& trace, const RunSpec& spec,
                                   const DaemonOptions& options = {},
                                   LoadGenReport* report = nullptr,
                                   PhaseTimings* timings = nullptr);

/// Streaming counterpart: requests are pulled from `source` one at a time
/// (the first pull anchors the clocks), so a workload-DSL soak never
/// materializes its trace — memory stays bounded by the generator's
/// universe at any request count. Identical semantics otherwise; a
/// materialized Trace through the overload above takes this same path via
/// VectorTraceSource, and the smoke-replay equality between the two is a
/// ctest (DaemonWorkloadTest).
[[nodiscard]] RunResult run_daemon(TraceSource& source, const RunSpec& spec,
                                   const DaemonOptions& options = {},
                                   LoadGenReport* report = nullptr,
                                   PhaseTimings* timings = nullptr);

/// DEPRECATED pre-RunSpec shape, kept one release.
[[nodiscard]] RunResult run_daemon(const Trace& trace, const GroupConfig& config,
                                   const DaemonOptions& options = {},
                                   LoadGenReport* report = nullptr,
                                   PhaseTimings* timings = nullptr);

}  // namespace eacache
