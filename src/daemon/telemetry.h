// Live telemetry plane for daemon mode (DESIGN.md §13).
//
// While the simulator only surfaces its MetricRegistry after the run, a
// daemon must be observable WHILE it serves. The plane is three layers,
// each reusable without the next:
//
//   StatsPoller      — a wall-clock aggregator thread. Every period it asks
//                      each worker for a registry snapshot through the
//                      DaemonGroup stats seam (a kStatsRequest handled at
//                      the top of the worker's mailbox loop — the request
//                      hot path stays lock-free), merges the per-worker
//                      shards into one group-wide TelemetrySnapshot, and
//                      derives windowed rates (req/s, hit %, ICP queries/s)
//                      from the deltas against the previous tick.
//   Exporters        — Prometheus text exposition (obs/prometheus.h) and a
//                      JSON snapshot (schema below, registry block shared
//                      with the end-of-run result dump), written on demand:
//                      to a file via atomic tmp+rename (--stats-out), or
//                      served by the minimal HTTP endpoint (--stats-port).
//                      StatsHttpHandler is the in-process seam: path in,
//                      bytes out, no sockets — tests drive it directly;
//                      StatsHttpServer is the thin blocking TCP wrapper.
//   Flight recorder  — dumps every worker's bounded ring of recent spans
//                      plus per-worker registry deltas (vs the poller's
//                      last tick) as JSONL, for post-incident forensics.
//                      Triggered by admission-window saturation in the load
//                      generator or by FaultPlan::flight_dumps instants.
//
// Consistency contract: one TelemetrySnapshot is per-worker consistent
// (each worker publishes between two requests, never mid-request) but only
// loosely consistent across workers — worker A's sample may include a
// request whose ICP probe has not yet reached worker B's counters. Derived
// group-wide rates therefore converge over a window rather than balancing
// exactly at every instant; end-of-run numbers come from collect_result(),
// which merges after join and stays exact.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "daemon/daemon_group.h"

namespace eacache {

/// One group-wide view, produced by StatsPoller::poll_once. The registry is
/// the merge of every worker's snapshot plus the derived "telemetry.*"
/// gauges, so both exporters serialize a single object.
struct TelemetrySnapshot {
  std::int64_t at_ms = 0;          // group-clock reading, epoch-relative ms
  std::uint64_t tick = 0;          // 1-based poll count
  double window_seconds = 0.0;     // wall span the windowed rates cover
  std::uint64_t total_requests = 0;
  std::uint64_t in_flight = 0;     // sum of per-worker pending tables
  Bytes resident_bytes = 0;
  std::uint64_t resident_docs = 0;
  double hit_rate = 0.0;           // cumulative, from the merged metrics
  double window_hit_rate = 0.0;    // over the last window only
  double requests_per_second = 0.0;
  double icp_queries_per_second = 0.0;
  double origin_fetches_per_second = 0.0;
  MetricRegistry registry;
};

class StatsPoller {
 public:
  struct Options {
    Duration period = msec(1000);
    /// Per-tick observer (stderr one-liners, --stats-out files). Called
    /// from the poller thread, outside the poller's lock.
    std::function<void(const TelemetrySnapshot&)> on_sample;
    /// How long one tick waits for every worker's ack before skipping.
    Duration sample_timeout = sec(5);
  };

  StatsPoller(DaemonGroup& group, Options options);
  ~StatsPoller();

  StatsPoller(const StatsPoller&) = delete;
  StatsPoller& operator=(const StatsPoller&) = delete;

  /// Spawn the wall-clock poll thread. Call once; stop() joins it.
  void start();
  void stop();

  /// One synchronous sample+aggregate round (the thread calls this; tests
  /// call it directly for deterministic scrapes). Returns false when the
  /// group failed to answer within the sample timeout (e.g. stopped).
  bool poll_once();

  /// Copy of the most recent snapshot (default-constructed before the
  /// first tick).
  [[nodiscard]] TelemetrySnapshot latest() const;
  [[nodiscard]] std::uint64_t ticks() const;

  /// Per-worker registry snapshots from the latest tick, for flight-dump
  /// deltas. Empty before the first tick.
  [[nodiscard]] std::vector<MetricRegistry> worker_baselines() const;

 private:
  void thread_main();

  DaemonGroup& group_;
  Options options_;

  mutable Mutex mutex_;
  CondVar wake_;
  bool stop_requested_ EACACHE_GUARDED_BY(mutex_) = false;
  TelemetrySnapshot latest_ EACACHE_GUARDED_BY(mutex_);
  std::vector<MetricRegistry> baselines_ EACACHE_GUARDED_BY(mutex_);

  bool started_ = false;
  std::thread thread_;
};

/// JSON snapshot exporter. Schema (keys documented in DESIGN.md §13):
/// {"at_ms","tick","window_seconds","derived":{...},"registry":{...}} with
/// the registry block byte-compatible with the end-of-run result dump's
/// (core/run_result_json.h append_metric_registry).
void write_telemetry_json(std::ostream& out, const TelemetrySnapshot& snapshot);
[[nodiscard]] std::string telemetry_snapshot_to_json(const TelemetrySnapshot& snapshot);

/// Prometheus exposition of the snapshot's merged registry (derived gauges
/// included). Thin wrapper over obs/prometheus.h for symmetry.
void write_telemetry_prometheus(std::ostream& out, const TelemetrySnapshot& snapshot);

/// Atomic file target: serialize to `path` + ".tmp", then rename over
/// `path` so a concurrent reader never sees a torn snapshot. Returns false
/// (and logs) on I/O failure. `format` is "json" or "prom".
bool write_stats_file(const std::string& path, const TelemetrySnapshot& snapshot,
                      const std::string& format = "json");

/// The in-process HTTP seam: maps a request path to a full response, no
/// sockets involved. "/metrics" serves Prometheus exposition, "/stats.json"
/// the JSON snapshot, "/" a plain-text index; anything else is a 404.
class StatsHttpHandler {
 public:
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  explicit StatsHttpHandler(const StatsPoller& poller) : poller_(&poller) {}

  [[nodiscard]] Response handle(std::string_view path) const;

 private:
  const StatsPoller* poller_;
};

/// Minimal blocking HTTP/1.0 endpoint over the handler: one accept loop
/// thread, one request per connection, loopback only. Enough for curl and
/// a Prometheus scrape job; emphatically not a general web server.
class StatsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` immediately (throws std::runtime_error on
  /// failure); `port` 0 picks an ephemeral port — read it back with
  /// bound_port(). start() begins serving.
  StatsHttpServer(StatsHttpHandler handler, std::uint16_t port);
  ~StatsHttpServer();

  StatsHttpServer(const StatsHttpServer&) = delete;
  StatsHttpServer& operator=(const StatsHttpServer&) = delete;

  void start();
  void stop();
  [[nodiscard]] std::uint16_t bound_port() const { return port_; }

 private:
  void serve_loop();
  void serve_one(int client_fd);

  StatsHttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  Mutex mutex_;
  bool stop_requested_ EACACHE_GUARDED_BY(mutex_) = false;
  bool started_ = false;
  std::thread thread_;
};

/// Flight-recorder dump: every worker's recent-span ring as trace-schema
/// JSONL lines (obs/trace_log.h write_span_jsonl — cross-hop span/
/// parent_span/hop fields included), followed by one registry-delta line
/// per counter: {"worker":W,"metric":NAME,"value":V,"delta":D} where the
/// delta is against `baselines` (the poller's previous tick) when given,
/// else equals the value. Returns the number of span lines written.
std::size_t write_flight_dump(std::ostream& out,
                              const std::vector<DaemonGroup::WorkerStatsSample>& samples,
                              const std::vector<MetricRegistry>* baselines);

/// Sample the group (spans included) and dump to `path` (truncating).
/// Returns the span-line count, or nullopt when sampling or I/O failed.
std::optional<std::size_t> dump_flight_recording(DaemonGroup& group, const StatsPoller* poller,
                                                 const std::string& path);

}  // namespace eacache
