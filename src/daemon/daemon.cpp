#include "daemon/daemon.h"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace eacache {

namespace {
double elapsed_ms(std::chrono::steady_clock::time_point since) {
  const auto d = std::chrono::steady_clock::now() - since;
  return std::chrono::duration<double, std::milli>(d).count();
}
}  // namespace

std::vector<std::string> validate_daemon_run(const GroupConfig& config,
                                             const DaemonOptions& options) {
  std::vector<std::string> errors = config.validate_for_daemon();
  const auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  if (options.mode == DaemonMode::kWallClock) {
    if (options.load.pacing == PacingMode::kTraceSpeedup &&
        !(options.load.speedup > 0.0 && std::isfinite(options.load.speedup))) {
      fail("load.speedup must be positive and finite (zero-rate load never "
           "submits a request)");
    }
    if (options.load.pacing == PacingMode::kFixedRate &&
        !(options.load.requests_per_second > 0.0 &&
          std::isfinite(options.load.requests_per_second))) {
      fail("load.requests_per_second must be positive and finite under "
           "kFixedRate pacing (zero-rate load never submits a request)");
    }
    if (!options.faults.empty()) {
      fail("wall-clock daemon runs cannot honour a FaultPlan: its timestamps "
           "are simulated trace instants, not wall instants");
    }
    if (options.load.max_in_flight == 0) {
      fail("load.max_in_flight must be >= 1 (a zero admission window never "
           "submits a request)");
    }
  }
  if (!options.faults.outages.empty()) {
    fail("peer outages are simulator-only fault injection (the daemon's "
         "in-memory wire has no loss hook); only flushes are supported");
  }
  if (options.load.drain_timeout <= Duration::zero()) {
    fail("load.drain_timeout must be positive");
  }
  return errors;
}

void validate_daemon_run_or_throw(const GroupConfig& config, const DaemonOptions& options) {
  const std::vector<std::string> errors = validate_daemon_run(config, options);
  if (errors.empty()) return;
  std::string message = "invalid daemon run: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) message += "; ";
    message += errors[i];
  }
  throw std::invalid_argument(message);
}

RunResult run_daemon(const Trace& trace, const GroupConfig& config,
                     const DaemonOptions& options, LoadGenReport* report,
                     PhaseTimings* timings) {
  validate_daemon_run_or_throw(config, options);
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("run_daemon: trace must be time-ordered");
  }

  const auto drive_started = std::chrono::steady_clock::now();
  const TimePoint trace_start = trace.empty() ? kSimEpoch : trace.requests.front().at;

  // The clock seam: manual time pinned to trace stamps for deterministic
  // smoke replay, a steady clock anchored at the trace start for live runs.
  FakeClock fake(trace_start);
  SteadyClock steady(trace_start);
  const bool smoke = options.mode == DaemonMode::kSmokeReplay;
  Clock& clock = smoke ? static_cast<Clock&>(fake) : static_cast<Clock&>(steady);

  DaemonGroup group(config, clock, options.mode);
  group.start();
  LoadGen gen(group, clock, smoke ? &fake : nullptr, options.mode, options.load,
              options.faults);
  const LoadGenReport gen_report = gen.replay(trace);
  group.stop();
  if (report != nullptr) *report = gen_report;
  if (timings != nullptr) timings->sim_ms = elapsed_ms(drive_started);

  const auto report_started = std::chrono::steady_clock::now();
  RunResult result = group.collect_result();
  if (timings != nullptr) timings->report_ms = elapsed_ms(report_started);
  return result;
}

}  // namespace eacache
