#include "daemon/daemon.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

namespace eacache {

namespace {
double elapsed_ms(std::chrono::steady_clock::time_point since) {
  const auto d = std::chrono::steady_clock::now() - since;
  return std::chrono::duration<double, std::milli>(d).count();
}
}  // namespace

namespace {

/// The option-level rules shared by both validation overloads; group-level
/// rules come from RunSpec::validate (or the deprecated GroupConfig path).
void append_option_rules(const DaemonOptions& options, std::vector<std::string>& errors) {
  const auto fail = [&errors](std::string message) { errors.push_back(std::move(message)); };

  if (options.mode == DaemonMode::kWallClock) {
    if (options.load.pacing == PacingMode::kTraceSpeedup &&
        !(options.load.speedup > 0.0 && std::isfinite(options.load.speedup))) {
      fail("load.speedup must be positive and finite (zero-rate load never "
           "submits a request)");
    }
    if (options.load.pacing == PacingMode::kFixedRate &&
        !(options.load.requests_per_second > 0.0 &&
          std::isfinite(options.load.requests_per_second))) {
      fail("load.requests_per_second must be positive and finite under "
           "kFixedRate pacing (zero-rate load never submits a request)");
    }
    if (!options.faults.empty()) {
      fail("wall-clock daemon runs cannot honour a FaultPlan: its timestamps "
           "are simulated trace instants, not wall instants");
    }
    if (options.load.max_in_flight == 0) {
      fail("load.max_in_flight must be >= 1 (a zero admission window never "
           "submits a request)");
    }
  }
  if (!options.faults.outages.empty()) {
    fail("peer outages are simulator-only fault injection (the daemon's "
         "in-memory wire has no loss hook); only flushes are supported");
  }
  if (options.load.drain_timeout <= Duration::zero()) {
    fail("load.drain_timeout must be positive");
  }

  const TelemetryOptions& telemetry = options.telemetry;
  if (telemetry.poller_enabled()) {
    if (options.mode == DaemonMode::kSmokeReplay) {
      fail("live stats export (stats_out / stats_port / on_sample) needs "
           "wall-clock mode: a smoke replay has no wall time to poll on");
    }
    if (telemetry.stats_period <= Duration::zero()) {
      fail("telemetry.stats_period must be positive");
    }
    if (telemetry.sample_timeout <= Duration::zero()) {
      fail("telemetry.sample_timeout must be positive");
    }
  }
  if (telemetry.stats_port > 65535) {
    fail("telemetry.stats_port must fit a TCP port (<= 65535)");
  }
  if (telemetry.stats_format != "json" && telemetry.stats_format != "prom") {
    fail("telemetry.stats_format must be \"json\" or \"prom\"");
  }
  if (!telemetry.flight_out.empty() && telemetry.flight_capacity == 0) {
    fail("telemetry.flight_out needs telemetry.flight_capacity > 0 (an empty "
         "ring would dump nothing)");
  }
  if (!options.faults.flight_dumps.empty() && telemetry.flight_out.empty()) {
    fail("FaultPlan flight_dumps need telemetry.flight_out (and a non-zero "
         "flight_capacity) to land anywhere");
  }
}

[[noreturn]] void throw_daemon_errors(const std::vector<std::string>& errors) {
  std::string message = "invalid daemon run: ";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) message += "; ";
    message += errors[i];
  }
  throw std::invalid_argument(message);
}

}  // namespace

std::vector<std::string> validate_daemon_run(const RunSpec& spec, const DaemonOptions& options) {
  std::vector<std::string> errors = spec.validate(RunTarget::kDaemon);
  if (!options.faults.empty()) {
    errors.push_back(
        "faults belong on the RunSpec (RunSpec::faults); leave "
        "DaemonOptions::faults empty when running through the RunSpec API");
  }
  // Option rules see the fault plan the run would actually use.
  DaemonOptions effective = options;
  effective.faults = spec.faults;
  append_option_rules(effective, errors);
  return errors;
}

std::vector<std::string> validate_daemon_run(const GroupConfig& config,
                                             const DaemonOptions& options) {
  std::vector<std::string> errors = config.validate_for_daemon();
  append_option_rules(options, errors);
  return errors;
}

void validate_daemon_run_or_throw(const RunSpec& spec, const DaemonOptions& options) {
  const std::vector<std::string> errors = validate_daemon_run(spec, options);
  if (!errors.empty()) throw_daemon_errors(errors);
}

void validate_daemon_run_or_throw(const GroupConfig& config, const DaemonOptions& options) {
  const std::vector<std::string> errors = validate_daemon_run(config, options);
  if (!errors.empty()) throw_daemon_errors(errors);
}

RunResult run_daemon(const Trace& trace, const RunSpec& spec, const DaemonOptions& options,
                     LoadGenReport* report, PhaseTimings* timings) {
  validate_daemon_run_or_throw(spec, options);
  DaemonOptions effective = options;
  effective.faults = spec.faults;
  return run_daemon(trace, spec.group, effective, report, timings);
}

namespace {

/// Buffers the first pull of a source so run_daemon can anchor its clocks
/// at the stream's first timestamp without materializing anything; reset()
/// re-peeks so the contract's replay clause survives the wrapper.
class PeekedSource final : public TraceSource {
 public:
  explicit PeekedSource(TraceSource& inner) : inner_(inner) { peek(); }

  [[nodiscard]] TimePoint start() const { return head_ ? head_->at : kSimEpoch; }

  bool next(Request& out) override {
    if (head_) {
      out = *head_;
      head_.reset();
      return true;
    }
    return inner_.next(out);
  }

  void reset() override {
    inner_.reset();
    peek();
  }

 private:
  void peek() {
    Request first;
    head_.reset();
    if (inner_.next(first)) head_ = first;
  }

  TraceSource& inner_;
  std::optional<Request> head_;
};

/// The shared drive: everything after validation + clock anchoring. Both
/// run_daemon overloads funnel here (the Trace one through
/// VectorTraceSource, so materialized and streamed runs are the same code
/// path end to end).
RunResult drive_daemon(TraceSource& source, TimePoint trace_start,
                       const GroupConfig& config, const DaemonOptions& options,
                       LoadGenReport* report, PhaseTimings* timings) {
  const auto drive_started = std::chrono::steady_clock::now();

  // The clock seam: manual time pinned to trace stamps for deterministic
  // smoke replay, a steady clock anchored at the trace start for live runs.
  FakeClock fake(trace_start);
  SteadyClock steady(trace_start);
  const bool smoke = options.mode == DaemonMode::kSmokeReplay;
  Clock& clock = smoke ? static_cast<Clock&>(fake) : static_cast<Clock&>(steady);

  DaemonGroup group(config, clock, options.mode, options.telemetry.flight_capacity);
  group.start();

  // Telemetry plane: poller + exporters (wall-clock only, validated above)
  // and the flight-dump trigger, torn down before group.stop() so nothing
  // samples a stopped group.
  const TelemetryOptions& telemetry = options.telemetry;
  std::unique_ptr<StatsPoller> poller;
  std::unique_ptr<StatsHttpServer> server;
  if (telemetry.poller_enabled()) {
    StatsPoller::Options poll_options;
    poll_options.period = telemetry.stats_period;
    poll_options.sample_timeout = telemetry.sample_timeout;
    poll_options.on_sample = [&telemetry](const TelemetrySnapshot& snapshot) {
      if (!telemetry.stats_out.empty()) {
        write_stats_file(telemetry.stats_out, snapshot, telemetry.stats_format);
      }
      if (telemetry.on_sample) telemetry.on_sample(snapshot);
    };
    poller = std::make_unique<StatsPoller>(group, poll_options);
    // Bind + publish the port BEFORE the first poll tick so an on_sample
    // observer announcing the endpoint never reads it half-initialized.
    if (telemetry.stats_port >= 0) {
      server = std::make_unique<StatsHttpServer>(
          StatsHttpHandler(*poller), static_cast<std::uint16_t>(telemetry.stats_port));
      server->start();
      if (telemetry.bound_port != nullptr) *telemetry.bound_port = server->bound_port();
    }
    poller->start();
  }

  LoadGenOptions load = options.load;
  if (!telemetry.flight_out.empty()) {
    load.on_flight_dump = [&group, &poller, &telemetry] {
      dump_flight_recording(group, poller.get(), telemetry.flight_out);
    };
  }

  LoadGen gen(group, clock, smoke ? &fake : nullptr, options.mode, load,
              options.faults);
  const LoadGenReport gen_report = gen.replay(source);
  if (server) server->stop();
  if (poller) poller->stop();
  group.stop();
  if (report != nullptr) *report = gen_report;
  if (timings != nullptr) timings->sim_ms = elapsed_ms(drive_started);

  const auto report_started = std::chrono::steady_clock::now();
  RunResult result = group.collect_result();
  if (timings != nullptr) timings->report_ms = elapsed_ms(report_started);
  return result;
}

}  // namespace

RunResult run_daemon(const Trace& trace, const GroupConfig& config,
                     const DaemonOptions& options, LoadGenReport* report,
                     PhaseTimings* timings) {
  validate_daemon_run_or_throw(config, options);
  if (!is_time_ordered(trace.requests)) {
    throw std::invalid_argument("run_daemon: trace must be time-ordered");
  }
  const TimePoint trace_start = trace.empty() ? kSimEpoch : trace.requests.front().at;
  VectorTraceSource source(trace);
  return drive_daemon(source, trace_start, config, options, report, timings);
}

RunResult run_daemon(TraceSource& source, const RunSpec& spec,
                     const DaemonOptions& options, LoadGenReport* report,
                     PhaseTimings* timings) {
  validate_daemon_run_or_throw(spec, options);
  DaemonOptions effective = options;
  effective.faults = spec.faults;
  PeekedSource peeked(source);
  return drive_daemon(peeked, peeked.start(), spec.group, effective, report, timings);
}

}  // namespace eacache
