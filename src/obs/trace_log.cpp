#include "obs/trace_log.h"

#include <cmath>
#include <ostream>

namespace eacache {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kArrival: return "arrival";
    case SpanKind::kLocalHit: return "local_hit";
    case SpanKind::kIcpProbe: return "icp_probe";
    case SpanKind::kIcpLoss: return "icp_loss";
    case SpanKind::kSiblingFetch: return "sibling_fetch";
    case SpanKind::kParentFetch: return "parent_fetch";
    case SpanKind::kOriginFetch: return "origin_fetch";
    case SpanKind::kPlacement: return "placement";
    case SpanKind::kComplete: return "complete";
    case SpanKind::kIcpTimeout: return "icp_timeout";
    case SpanKind::kIcpRetry: return "icp_retry";
    case SpanKind::kCoalescedJoin: return "coalesced_join";
  }
  return "?";
}

void TraceLog::record(const SpanEvent& event) {
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<SpanEvent> TraceLog::events() const {
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;  // never wrapped: record order == storage order
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

namespace {

// Minimal JSON string escaping (obs depends only on common, so it cannot
// reuse metrics/json.h — see the dependency note in src/obs/CMakeLists.txt).
void write_escaped(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Expiration ages are non-negative; infinity (a cold cache) is legal JSON
/// nowhere, so it serializes as the string "inf".
void write_age(std::ostream& out, std::string_view key, double age_ms) {
  out << ",\"" << key << "\":";
  if (std::isinf(age_ms)) {
    out << "\"inf\"";
  } else {
    out << age_ms;
  }
}

std::string_view outcome_name(std::int64_t code) {
  switch (code) {
    case 0: return "local-hit";
    case 1: return "remote-hit";
    case 2: return "miss";
  }
  return "?";
}

}  // namespace

void write_span_jsonl(std::ostream& out, const SpanEvent& event, std::string_view run_label) {
  out << '{';
  if (!run_label.empty()) {
    out << "\"run\":";
    write_escaped(out, run_label);
    out << ',';
  }
  out << "\"request\":" << event.request << ",\"at_ms\":" << event.at_ms
      << ",\"proxy\":" << event.proxy << ",\"event\":\"" << to_string(event.kind)
      << "\",\"doc\":" << event.document;
  // Distributed-trace identity (daemon mode only; simulator spans carry the
  // zero/negative sentinels and serialize byte-identically to before).
  if (event.span != 0) out << ",\"span\":" << event.span;
  if (event.parent_span >= 0) out << ",\"parent_span\":" << event.parent_span;
  if (event.hop >= 0) out << ",\"hop\":" << event.hop;
  if (event.peer >= 0) out << ",\"peer\":" << event.peer;
  if (event.requester_ea_ms >= 0.0) write_age(out, "requester_ea_ms", event.requester_ea_ms);
  if (event.responder_ea_ms >= 0.0) write_age(out, "responder_ea_ms", event.responder_ea_ms);
  if (event.flag >= 0) {
    const bool set = event.flag != 0;
    switch (event.kind) {
      case SpanKind::kIcpProbe: out << ",\"hit\":" << (set ? "true" : "false"); break;
      case SpanKind::kSiblingFetch:
      case SpanKind::kParentFetch:
        out << ",\"found\":" << (set ? "true" : "false");
        break;
      case SpanKind::kPlacement: out << ",\"accepted\":" << (set ? "true" : "false"); break;
      case SpanKind::kOriginFetch:
        out << ",\"speculative\":" << (set ? "true" : "false");
        break;
      case SpanKind::kLocalHit: out << ",\"validated\":" << (set ? "true" : "false"); break;
      default: out << ",\"flag\":" << (set ? "true" : "false"); break;
    }
  }
  if (event.value >= 0) {
    switch (event.kind) {
      case SpanKind::kComplete:
        out << ",\"outcome\":\"" << outcome_name(event.value) << '"';
        break;
      case SpanKind::kIcpTimeout: out << ",\"unanswered\":" << event.value; break;
      case SpanKind::kIcpRetry: out << ",\"attempt\":" << event.value; break;
      case SpanKind::kCoalescedJoin: out << ",\"leader\":" << event.value; break;
      default: out << ",\"bytes\":" << event.value; break;
    }
  }
  out << '}';
}

void TraceLog::write_jsonl(std::ostream& out, std::string_view run_label) const {
  for (const SpanEvent& event : events()) {
    write_span_jsonl(out, event, run_label);
    out << '\n';
  }
}

}  // namespace eacache
