#include "obs/metric_registry.h"

#include <stdexcept>

namespace eacache {

MetricRegistry::Counter MetricRegistry::counter(const std::string& name) {
  if (!enabled_) return Counter{};
  return Counter{&counters_.try_emplace(name, 0).first->second};
}

MetricRegistry::Gauge MetricRegistry::gauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  return Gauge{&gauges_.try_emplace(name, 0.0).first->second};
}

MetricRegistry::HistogramHandle MetricRegistry::histogram(const std::string& name, double lo,
                                                          double hi, std::size_t buckets) {
  if (!enabled_) return HistogramHandle{};
  auto [it, inserted] = histograms_.try_emplace(name, lo, hi, buckets);
  if (!inserted) {
    // Same-name re-registration must agree on geometry or the merged/export
    // semantics would silently change shape.
    Histogram probe(lo, hi, buckets);
    it->second.merge(probe);  // throws std::invalid_argument on mismatch
  }
  return HistogramHandle{&it->second};
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

void MetricRegistry::merge(const MetricRegistry& other) {
  if (!enabled_) return;
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] += value;
  for (const auto& [name, hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

}  // namespace eacache
