// Observability knobs, carried inside GroupConfig so every layer that sees
// the group configuration can see them.
//
// Two deliberately independent switches:
//   * registry        — the per-proxy/per-group metric registry (cheap named
//                       counters/gauges/histograms). Default ON: the counters
//                       are pure accounting and never perturb simulation
//                       outcomes (a guarantee tested by observability_test).
//   * trace_capacity  — the request-lifecycle span ring buffer. Default OFF
//                       (capacity 0); benches enable it with --trace-out.
//
// series_points controls the periodic per-proxy CacheExpAge/occupancy time
// series the simulator samples into SimulationResult::proxy_series (the
// sampling period is trace-span / series_points; 0 disables the series).
#pragma once

#include <cstddef>

namespace eacache {

/// Default span ring capacity when tracing is switched on without an
/// explicit size (e.g. by a bench's --trace-out flag).
inline constexpr std::size_t kDefaultTraceCapacity = 16384;

struct ObsConfig {
  bool registry = true;            // metric registry on/off
  std::size_t trace_capacity = 0;  // span ring buffer size; 0 = tracing off
  std::size_t series_points = 32;  // per-proxy time-series samples; 0 = off

  [[nodiscard]] static ObsConfig disabled() { return ObsConfig{false, 0, 0}; }
  [[nodiscard]] static ObsConfig with_tracing(std::size_t capacity = kDefaultTraceCapacity) {
    ObsConfig config;
    config.trace_capacity = capacity;
    return config;
  }
};

}  // namespace eacache
