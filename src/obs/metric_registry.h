// MetricRegistry: cheap named counters, gauges and histograms, in the style
// of a production proxy's per-node stats registry (Apache Traffic Server
// keeps an equivalent RecRaw table; Squid its StatCounters).
//
// Design constraints, in order:
//   1. Must never perturb the simulation: instrumentation is pure
//      accounting — no RNG draws, no container iteration on the hot path,
//      no behavioural branches beyond "is the registry enabled".
//   2. Hot-path increments must be cheap: call sites register a metric ONCE
//      (at construction) and keep a small handle; an increment is a pointer
//      dereference plus an add. Registration is the only name lookup.
//   3. Deterministic export: metrics dump in sorted name order, so two runs
//      of the same simulation serialize byte-identically regardless of
//      registration order or thread scheduling across sweep workers.
//
// Storage is node-based (std::map), so handles remain valid for the
// registry's lifetime no matter how many metrics are registered after them.
// A DISABLED registry hands out null handles: every operation through them
// is a no-op and the registry stays empty — the "observability off" state.
//
// Copying a registry copies the data only (a snapshot); handles held
// elsewhere keep pointing at the original. SimulationResult exploits this to
// carry a snapshot out of a destroyed CacheGroup.
//
// Threading contract (checked by the DESIGN.md §11 analysis stack): a
// registry is SINGLE-OWNER state — it belongs to one simulation run, which
// executes on exactly one sweep worker, so it carries no internal locking
// and its handles are deliberately lock-free pointer writes. The only
// cross-thread motion is the completed SimulationResult (registry snapshot
// included) travelling from a sweep worker to the caller's sink thread,
// which the sweep engine orders through its completion mutex
// (sim/sweep.cpp CompletionBoard). Never share one live registry between
// concurrently running simulations; snapshot() documents the one sanctioned
// copy point.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace eacache {

class MetricRegistry {
 public:
  /// Monotonic counter handle. Null handles (default-constructed, or from a
  /// disabled registry) swallow every operation.
  class Counter {
   public:
    Counter() = default;
    void inc(std::uint64_t by = 1) const {
      if (slot_ != nullptr) *slot_ += by;
    }
    [[nodiscard]] std::uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }
    [[nodiscard]] bool bound() const { return slot_ != nullptr; }

   private:
    friend class MetricRegistry;
    explicit Counter(std::uint64_t* slot) : slot_(slot) {}
    std::uint64_t* slot_ = nullptr;
  };

  /// Last-write-wins gauge handle (e.g. end-of-run occupancy).
  class Gauge {
   public:
    Gauge() = default;
    void set(double v) const {
      if (slot_ != nullptr) *slot_ = v;
    }
    [[nodiscard]] double value() const { return slot_ != nullptr ? *slot_ : 0.0; }
    [[nodiscard]] bool bound() const { return slot_ != nullptr; }

   private:
    friend class MetricRegistry;
    explicit Gauge(double* slot) : slot_(slot) {}
    double* slot_ = nullptr;
  };

  /// Fixed-geometry histogram handle (common/stats.h Histogram underneath).
  class HistogramHandle {
   public:
    HistogramHandle() = default;
    void observe(double x) const {
      if (hist_ != nullptr) hist_->add(x);
    }
    [[nodiscard]] bool bound() const { return hist_ != nullptr; }

   private:
    friend class MetricRegistry;
    explicit HistogramHandle(Histogram* hist) : hist_(hist) {}
    Histogram* hist_ = nullptr;
  };

  MetricRegistry() = default;
  explicit MetricRegistry(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Get-or-create. The counted value starts at zero; re-registering an
  /// existing name returns a handle to the same slot.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// Re-registering an existing histogram name requires the SAME geometry
  /// (throws std::invalid_argument otherwise).
  HistogramHandle histogram(const std::string& name, double lo, double hi, std::size_t buckets);

  /// Point reads for tests/exporters (0 / empty when the name is unknown).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// Explicit snapshot: copies names and values, never handles — handles
  /// held elsewhere keep pointing at *this, and later increments through
  /// them leave the snapshot untouched. The caller must ensure no writer is
  /// concurrently instrumenting *this for the duration of the copy (the
  /// simulator snapshots only in its report phase, after the run's last
  /// event). Pinned by MetricRegistryTest.SnapshotIsolatesLiveInstruments.
  [[nodiscard]] MetricRegistry snapshot() const { return *this; }

  /// Element-wise aggregation: counters and gauges sum by name, histograms
  /// merge by name (identical geometry required — Histogram::merge throws on
  /// mismatch). Names only present in `other` are adopted. Merging into a
  /// disabled registry is a no-op, mirroring handle behaviour.
  void merge(const MetricRegistry& other);

  /// Deterministic (name-sorted) views for export.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  bool enabled_ = true;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace eacache
