// Prometheus text-exposition writer for MetricRegistry snapshots.
//
// The registry's internal dotted names map onto the flat Prometheus
// namespace by explicit rules (DESIGN.md §13; every exported family name
// appears in the DESIGN.md §11 table — project_lint.py rule 7 enforces
// that):
//   * "group.<x>"            -> "eacache_group_<x>" (dots -> underscores);
//                               counters gain the "_total" suffix.
//   * "proxy.<id>.<x>"       -> "eacache_proxy_<x>"  {proxy="<id>"}
//   * "link.<f>-><t>.bytes"  -> "eacache_link_bytes_total" {from=..,to=..}
//   * "telemetry.<x>"        -> "eacache_telemetry_<x>" (derived gauges the
//                               stats poller computes; never counters)
//   * anything else          -> "eacache_<sanitized>" (fallback)
// Histograms expose the standard triplet: cumulative "_bucket" series with
// le="upper edge" (underflow folds into the first bucket, le="+Inf" equals
// the sample count), "_sum" and "_count".
//
// Output is deterministic: families emit in sorted exposition-name order,
// series within a family in sorted internal-name order, so two snapshots of
// the same registry serialize identically (the stats_exposition_test golden
// relies on this).
//
// Lives in obs (depends only on common) so any layer can serialize a
// registry without pulling in the metrics/JSON stack.
#pragma once

#include <iosfwd>
#include <string>

namespace eacache {

class MetricRegistry;

/// Serialize `registry` in Prometheus text exposition format (version
/// 0.0.4): "# HELP"/"# TYPE" headers per family, one "name{labels} value"
/// line per series, families sorted by exposition name.
void write_prometheus_exposition(std::ostream& out, const MetricRegistry& registry);

/// Exposition name for one internal metric name (without the "_total"
/// counter suffix and without labels) — exposed for the name-mapping tests.
[[nodiscard]] std::string prometheus_family_name(const std::string& internal_name);

}  // namespace eacache
