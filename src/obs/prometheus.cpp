#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/metric_registry.h"

namespace eacache {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes an
/// underscore (so "icp.queries" -> "icp_queries", "a->b" -> "a__b").
std::string sanitize(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return out;
}

/// %.12g, matching metrics/json.h JsonWriter::value(double) so the JSON and
/// Prometheus exporters render identical numbers for the same sample.
std::string render_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

/// One internal dotted name, resolved to its exposition family + labels +
/// a normalized internal pattern for the HELP line.
struct ParsedName {
  std::string family;   // exposition name, no "_total" suffix yet
  std::string labels;   // rendered "{k=\"v\"}" or empty
  std::string pattern;  // internal name with ids normalized, for HELP
};

ParsedName parse_name(const std::string& name) {
  // "proxy.<id>.<rest>" -> per-proxy series.
  if (name.rfind("proxy.", 0) == 0) {
    const std::size_t dot = name.find('.', 6);
    if (dot != std::string::npos && all_digits(std::string_view(name).substr(6, dot - 6))) {
      const std::string id = name.substr(6, dot - 6);
      const std::string rest = name.substr(dot + 1);
      return {"eacache_proxy_" + sanitize(rest), "{proxy=\"" + id + "\"}",
              "proxy.<id>." + rest};
    }
  }
  // "link.<from>-><to>.<rest>" -> per-link series.
  if (name.rfind("link.", 0) == 0) {
    const std::size_t arrow = name.find("->", 5);
    const std::size_t dot = arrow == std::string::npos ? std::string::npos
                                                       : name.find('.', arrow + 2);
    if (arrow != std::string::npos && dot != std::string::npos) {
      const std::string from = name.substr(5, arrow - 5);
      const std::string to = name.substr(arrow + 2, dot - arrow - 2);
      const std::string rest = name.substr(dot + 1);
      if (all_digits(from) && (all_digits(to) || to == "origin")) {
        return {"eacache_link_" + sanitize(rest),
                "{from=\"" + from + "\",to=\"" + to + "\"}",
                "link.<from>-><to>." + rest};
      }
    }
  }
  // "group.*", "telemetry.*" and anything else: flatten the whole name.
  return {"eacache_" + sanitize(name), "", name};
}

struct Family {
  std::string type;     // "counter" | "gauge" | "histogram"
  std::string pattern;  // internal pattern for the HELP line
  std::vector<std::string> lines;
};

void emit_histogram(Family& family, const std::string& exposition_name,
                    const std::string& labels, const Histogram& hist) {
  // Cumulative le-buckets: underflow folds into every bound (a sample below
  // lo is certainly <= any upper edge); le="+Inf" covers overflow too.
  const std::string label_prefix =
      labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
  const double width = (hist.hi() - hist.lo()) / static_cast<double>(hist.num_buckets());
  std::uint64_t cumulative = hist.underflow();
  for (std::size_t i = 0; i < hist.num_buckets(); ++i) {
    cumulative += hist.bucket(i);
    const double bound = hist.lo() + width * static_cast<double>(i + 1);
    family.lines.push_back(exposition_name + "_bucket" + label_prefix + "le=\"" +
                           render_double(bound) + "\"} " + std::to_string(cumulative));
  }
  family.lines.push_back(exposition_name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
                         std::to_string(hist.total()));
  family.lines.push_back(exposition_name + "_sum" + labels + " " +
                         render_double(hist.sum()));
  family.lines.push_back(exposition_name + "_count" + labels + " " +
                         std::to_string(hist.total()));
}

}  // namespace

std::string prometheus_family_name(const std::string& internal_name) {
  return parse_name(internal_name).family;
}

void write_prometheus_exposition(std::ostream& out, const MetricRegistry& registry) {
  // Group series into families first: Prometheus forbids interleaving two
  // families, but the registry's name-sorted maps interleave them (e.g.
  // proxy.0.resident_bytes / proxy.0.resident_docs / proxy.1.resident_bytes).
  std::map<std::string, Family> families;

  for (const auto& [name, value] : registry.counters()) {
    ParsedName parsed = parse_name(name);
    const std::string exposition = parsed.family + "_total";
    Family& family = families[exposition];
    family.type = "counter";
    family.pattern = parsed.pattern;
    family.lines.push_back(exposition + parsed.labels + " " + std::to_string(value));
  }
  for (const auto& [name, value] : registry.gauges()) {
    ParsedName parsed = parse_name(name);
    Family& family = families[parsed.family];
    family.type = "gauge";
    family.pattern = parsed.pattern;
    family.lines.push_back(parsed.family + parsed.labels + " " + render_double(value));
  }
  for (const auto& [name, hist] : registry.histograms()) {
    ParsedName parsed = parse_name(name);
    Family& family = families[parsed.family];
    family.type = "histogram";
    family.pattern = parsed.pattern;
    emit_histogram(family, parsed.family, parsed.labels, hist);
  }

  for (const auto& [exposition, family] : families) {
    out << "# HELP " << exposition << " eacache registry " << family.type << " "
        << family.pattern << "\n";
    out << "# TYPE " << exposition << " " << family.type << "\n";
    for (const std::string& line : family.lines) out << line << "\n";
  }
}

}  // namespace eacache
