// Request-lifecycle trace log: a bounded ring buffer of structured span
// events covering one client request's journey through the group —
// arrival → local lookup → ICP probes → sibling/parent/origin fetches →
// placement decisions → completion — each stamped with the request id, the
// acting proxy, the simulated time and (at decision points) the expiration
// ages both sides compared.
//
// The ring is fixed-size and overwrites oldest-first, so tracing a long run
// costs bounded memory; `dropped()` reports how many events fell off the
// front. Recording is branch-cheap: a disabled log (capacity 0) rejects
// events before building anything.
//
// Serialization is JSONL (one JSON object per line), the schema documented
// in DESIGN.md §8 and validated by the trace_jsonl_check ctest target.
//
// Threading contract (DESIGN.md §11): like MetricRegistry, a TraceLog is
// SINGLE-OWNER — one simulation run, one sweep worker — so record() and
// events() are unlocked by design. The completed ring only crosses threads
// inside a finished SimulationResult, ordered by the sweep engine's
// completion mutex; --trace-out serialization happens on the sink thread
// after that handoff.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace eacache {

/// What happened at this point of the request lifecycle.
enum class SpanKind : std::uint8_t {
  kArrival,       // request reached its home proxy
  kLocalHit,      // served from the home proxy's own disk
  kIcpProbe,      // one ICP query/reply exchange with a peer
  kIcpLoss,       // the exchange was dropped in flight (UDP loss)
  kSiblingFetch,  // HTTP fetch from a sibling cache
  kParentFetch,   // HTTP fetch hop up the parent chain
  kOriginFetch,   // fetch from the origin server
  kPlacement,     // keep-a-copy decision (requester or parent rule)
  kComplete,      // request resolved; value = RequestOutcome
  // Event-driven pipeline only (never emitted by the synchronous driver):
  kIcpTimeout,    // discovery window expired; value = unanswered probes
  kIcpRetry,      // re-probing unanswered peers; value = retry round (1-based)
  kCoalescedJoin, // joined an in-flight fetch; value = leader request id
};

[[nodiscard]] std::string_view to_string(SpanKind kind);

/// One structured span event. Optional fields use sentinels so the struct
/// stays a flat POD the ring can hold by value:
///   * peer < 0                 — no peer involved
///   * requester/responder EA < 0 — no age at this event
///     (infinity is a VALID age: a cold cache piggybacks +inf)
///   * flag < 0                 — no boolean payload
///   * value < 0                — no numeric payload
///   * span == 0                — no distributed-trace identity (simulator)
///   * parent_span < 0          — root span (or no trace identity at all)
///   * hop < 0                  — no hop depth recorded
struct SpanEvent {
  std::uint64_t request = 0;     // sequential id assigned at arrival
  std::int64_t at_ms = 0;        // simulated time since the epoch
  DocumentId document = 0;
  double requester_ea_ms = -1.0;
  double responder_ea_ms = -1.0;
  std::int64_t value = -1;       // kind-specific: bytes moved, outcome code
  std::uint64_t span = 0;        // daemon cross-hop trace: this span's id
  std::int64_t parent_span = -1; // daemon cross-hop trace: parent span id
  ProxyId proxy = 0;             // acting proxy
  std::int32_t peer = -1;        // probe/fetch counterpart
  std::int32_t hop = -1;         // hops from the home proxy (root = 0)
  SpanKind kind = SpanKind::kArrival;
  std::int8_t flag = -1;         // kind-specific: hit/found/accepted/speculative
};

class TraceLog {
 public:
  TraceLog() = default;  // disabled
  explicit TraceLog(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void record(const SpanEvent& event);

  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Every event ever recorded, including those overwritten.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return recorded_ - ring_.size(); }

  /// Snapshot in record order (oldest surviving event first).
  [[nodiscard]] std::vector<SpanEvent> events() const;

  /// One JSON object per line, oldest first. When `run_label` is non-empty
  /// every line carries it as a leading "run" field, so multiple runs can
  /// share one output file (the bench --trace-out convention).
  void write_jsonl(std::ostream& out, std::string_view run_label = {}) const;

 private:
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;  // ring slot the next event lands in
  std::uint64_t recorded_ = 0;
  std::vector<SpanEvent> ring_;
};

/// JSONL form of a single event (exposed for tests and the schema checker).
void write_span_jsonl(std::ostream& out, const SpanEvent& event,
                      std::string_view run_label = {});

}  // namespace eacache
