// Plain-text table and CSV rendering for the bench harnesses. The bench
// binaries print the same rows/series as the paper's figures and tables plus
// a machine-readable CSV block.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eacache {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned, boxed plain text.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used all over the benches.
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 2);
[[nodiscard]] std::string fmt_double(double value, int decimals = 2);

}  // namespace eacache
