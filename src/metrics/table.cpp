#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace eacache {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width does not match headers");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_sep = [&] {
    out << '+';
    for (const std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) out << '-';
      out << '+';
    }
    out << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) out << ' ';
      out << '|';
    }
    out << '\n';
  };

  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

namespace {
void print_csv_field(std::ostream& out, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    out << field;
    return;
  }
  out << '"';
  for (const char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}
}  // namespace

void TextTable::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      print_csv_field(out, cells[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_double(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace eacache
