#include "metrics/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace eacache {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width_ < 2 || height_ < 2) {
    throw std::invalid_argument("AsciiChart: plot area must be at least 2x2");
  }
}

void AsciiChart::add_series(std::string label, std::vector<double> values, char marker) {
  if (values.empty()) throw std::invalid_argument("AsciiChart: empty series");
  series_.push_back(Series{std::move(label), std::move(values), marker});
}

void AsciiChart::set_y_range(double y_min, double y_max) {
  if (!(y_max > y_min)) throw std::invalid_argument("AsciiChart: y_max must exceed y_min");
  fixed_range_ = true;
  y_min_ = y_min;
  y_max_ = y_max;
}

void AsciiChart::set_x_labels(std::vector<std::string> labels) {
  x_labels_ = std::move(labels);
}

std::string AsciiChart::render() const {
  if (series_.empty()) throw std::logic_error("AsciiChart: nothing to render");
  const std::size_t points = series_.front().values.size();
  for (const Series& series : series_) {
    if (series.values.size() != points) {
      throw std::logic_error("AsciiChart: series lengths differ");
    }
  }

  double lo = y_min_;
  double hi = y_max_;
  if (!fixed_range_) {
    lo = series_.front().values.front();
    hi = lo;
    for (const Series& series : series_) {
      for (const double v : series.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (hi == lo) hi = lo + 1.0;  // flat series: give it some headroom
  }

  // grid[row][col]; row 0 = top.
  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto col_of = [&](std::size_t index) {
    if (points == 1) return std::size_t{0};
    return index * (width_ - 1) / (points - 1);
  };
  const auto row_of = [&](double value) {
    const double clamped = std::clamp(value, lo, hi);
    const double unit = (clamped - lo) / (hi - lo);
    const auto from_bottom =
        static_cast<std::size_t>(std::lround(unit * static_cast<double>(height_ - 1)));
    return height_ - 1 - from_bottom;
  };
  for (const Series& series : series_) {
    for (std::size_t i = 0; i < points; ++i) {
      grid[row_of(series.values[i])][col_of(i)] = series.marker;
    }
  }

  std::string out;
  char label[32];
  for (std::size_t row = 0; row < height_; ++row) {
    const double value = hi - (hi - lo) * static_cast<double>(row) /
                                  static_cast<double>(height_ - 1);
    std::snprintf(label, sizeof(label), "%8.2f |", value);
    out += label;
    out += grid[row];
    out += '\n';
  }
  out += std::string(9, ' ') + '+' + std::string(width_, '-') + '\n';

  if (!x_labels_.empty()) {
    // Leave headroom past the plot edge so the rightmost label fits whole.
    std::size_t longest = 0;
    for (const std::string& text : x_labels_) longest = std::max(longest, text.size());
    std::string axis(10 + width_ + longest, ' ');
    for (std::size_t i = 0; i < x_labels_.size(); ++i) {
      const std::size_t col =
          10 + (x_labels_.size() == 1
                    ? 0
                    : i * (width_ - 1) / (x_labels_.size() - 1));
      const std::string& text = x_labels_[i];
      std::size_t start = col >= text.size() / 2 ? col - text.size() / 2 : 0;
      start = std::min(start, axis.size() - text.size());
      for (std::size_t k = 0; k < text.size(); ++k) axis[start + k] = text[k];
    }
    while (!axis.empty() && axis.back() == ' ') axis.pop_back();
    out += axis + '\n';
  }

  out += "legend:";
  for (const Series& series : series_) {
    out += ' ';
    out += series.marker;
    out += '=' + series.label;
  }
  out += '\n';
  return out;
}

}  // namespace eacache
