// Terminal line charts for the bench harnesses and examples: the paper's
// figures are hit-rate-vs-capacity curves, and a quick visual in the
// terminal beats squinting at CSV. Pure text, no dependencies.
#pragma once

#include <string>
#include <vector>

namespace eacache {

class AsciiChart {
 public:
  /// Plot area of `width` x `height` characters (axes and labels are drawn
  /// around it). Both must be >= 2.
  AsciiChart(std::size_t width, std::size_t height);

  /// Add a series of y-values; x positions are the value indices, spread
  /// evenly across the width. All series must have the same length
  /// (enforced at render time). `marker` draws the points.
  void add_series(std::string label, std::vector<double> values, char marker);

  /// Optional fixed y-range; by default the range spans all series.
  void set_y_range(double y_min, double y_max);

  /// Optional x tick labels (printed under the axis, spread evenly).
  void set_x_labels(std::vector<std::string> labels);

  /// Render the chart: plot area with axes, y labels on the left, a legend
  /// line at the bottom. Throws std::logic_error if series lengths differ
  /// or nothing was added.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string label;
    std::vector<double> values;
    char marker;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
  std::vector<std::string> x_labels_;
  bool fixed_range_ = false;
  double y_min_ = 0.0;
  double y_max_ = 1.0;
};

}  // namespace eacache
