// Minimal JSON emission for external tooling (plotting scripts, CI
// dashboards). Emission only — the library never parses JSON — so a tiny
// purpose-built writer beats a dependency. The SimulationResult serializer
// built on top of this lives in sim/result_json.h.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace eacache {

/// A small streaming JSON writer: objects/arrays with correct comma
/// placement and string escaping. Misuse (closing an unopened scope,
/// emitting a value where a key is required, two roots) throws
/// std::logic_error.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Inside an object: emit the key for the next value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once a single root value was written and every scope closed.
  [[nodiscard]] bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  void before_value();
  void write_escaped(std::string_view text);

  struct Scope {
    bool is_object = false;
    bool needs_comma = false;
    bool expecting_value = false;  // object scope: key was just written
  };

  std::ostream& out_;
  std::vector<Scope> stack_;
  bool wrote_root_ = false;
};

}  // namespace eacache
