#include "metrics/metrics.h"

#include <stdexcept>

namespace eacache {

namespace {
std::size_t index_of(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kLocalHit: return 0;
    case RequestOutcome::kRemoteHit: return 1;
    case RequestOutcome::kMiss: return 2;
  }
  throw std::invalid_argument("GroupMetrics: bad outcome");
}
}  // namespace

void GroupMetrics::record(RequestOutcome outcome, Bytes size, Duration latency) {
  const std::size_t i = index_of(outcome);
  ++total_requests_;
  ++counts_[i];
  bytes_requested_ += size;
  bytes_[i] += size;
  latency_sum_ += latency;
  latency_hist_.add(static_cast<double>(latency.count()));
}

double GroupMetrics::latency_percentile_ms(double quantile) const {
  // Negated-range form so NaN (which fails every ordered comparison, and
  // thus slipped through `< 0 || > 1`) is rejected like any other bad input.
  if (!(quantile >= 0.0 && quantile <= 1.0)) {
    throw std::invalid_argument("latency_percentile_ms: quantile in [0, 1]");
  }
  // With no samples the histogram's floor would leak out; report 0 ms
  // explicitly, matching the other rate accessors' empty-state convention.
  if (total_requests_ == 0) return 0.0;
  return latency_hist_.percentile(quantile);
}

std::uint64_t GroupMetrics::count(RequestOutcome outcome) const {
  return counts_[index_of(outcome)];
}

Bytes GroupMetrics::bytes(RequestOutcome outcome) const { return bytes_[index_of(outcome)]; }

double GroupMetrics::hit_rate() const {
  if (total_requests_ == 0) return 0.0;
  return static_cast<double>(counts_[0] + counts_[1]) / static_cast<double>(total_requests_);
}

double GroupMetrics::byte_hit_rate() const {
  if (bytes_requested_ == 0) return 0.0;
  return static_cast<double>(bytes_[0] + bytes_[1]) / static_cast<double>(bytes_requested_);
}

double GroupMetrics::local_hit_rate() const {
  if (total_requests_ == 0) return 0.0;
  return static_cast<double>(counts_[0]) / static_cast<double>(total_requests_);
}

double GroupMetrics::remote_hit_rate() const {
  if (total_requests_ == 0) return 0.0;
  return static_cast<double>(counts_[1]) / static_cast<double>(total_requests_);
}

double GroupMetrics::miss_rate() const {
  if (total_requests_ == 0) return 0.0;
  return static_cast<double>(counts_[2]) / static_cast<double>(total_requests_);
}

Duration GroupMetrics::measured_average_latency() const {
  if (total_requests_ == 0) return Duration::zero();
  return Duration{latency_sum_.count() / static_cast<SimClock::rep>(total_requests_)};
}

double GroupMetrics::estimated_average_latency_ms(const LatencyModel& model) const {
  if (total_requests_ == 0) return 0.0;
  // Paper Eq. 6. LHR + RHR + MR == 1 by construction, but we keep the
  // denominator to mirror the formula as published.
  const double lhr = local_hit_rate();
  const double rhr = remote_hit_rate();
  const double mr = miss_rate();
  const double numerator = lhr * static_cast<double>(model.local_hit.count()) +
                           rhr * static_cast<double>(model.remote_hit.count()) +
                           mr * static_cast<double>(model.miss.count());
  return numerator / (lhr + rhr + mr);
}

void GroupMetrics::merge(const GroupMetrics& other) {
  total_requests_ += other.total_requests_;
  bytes_requested_ += other.bytes_requested_;
  for (std::size_t i = 0; i < 3; ++i) {
    counts_[i] += other.counts_[i];
    bytes_[i] += other.bytes_[i];
  }
  latency_sum_ += other.latency_sum_;
  latency_hist_.merge(other.latency_hist_);
}

}  // namespace eacache
