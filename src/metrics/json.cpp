#include "metrics/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace eacache {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    wrote_root_ = true;
    return;
  }
  Scope& scope = stack_.back();
  if (scope.is_object) {
    if (!scope.expecting_value) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    scope.expecting_value = false;
  } else {
    if (scope.needs_comma) out_ << ',';
    scope.needs_comma = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope{true, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_object without matching begin_object");
  }
  if (stack_.back().expecting_value) {
    throw std::logic_error("JsonWriter: dangling key at end_object");
  }
  stack_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope{false, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_array without matching begin_array");
  }
  stack_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || !stack_.back().is_object) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  Scope& scope = stack_.back();
  if (scope.expecting_value) throw std::logic_error("JsonWriter: consecutive keys");
  if (scope.needs_comma) out_ << ',';
  scope.needs_comma = true;
  scope.expecting_value = true;
  write_escaped(name);
  out_ << ':';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    // JSON has no Infinity/NaN; emit null (the standard tooling-friendly
    // convention).
    out_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", number);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace eacache
