// Evaluation metrics — exactly the paper's section 4 definitions.
//
//  * Cumulative hit rate: total group hits / total requests.
//  * Cumulative byte hit rate: bytes served from the group / bytes requested.
//  * Local vs remote hit split (section 4.2 footnote 1).
//  * Average latency, two ways:
//      - measured: per-request latencies accumulated during simulation;
//      - estimated: the paper's Eq. 6,
//        (LHR*LHL + RHR*RHL + MR*ML) / (LHR + RHR + MR).
//  * Average cache expiration age (Table 1): mean over the group's caches
//    of each cache's mean victim DocExpAge — collected by the group layer,
//    carried here for reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "common/outcome.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/latency_model.h"

namespace eacache {

class GroupMetrics {
 public:
  void record(RequestOutcome outcome, Bytes size, Duration latency);

  [[nodiscard]] std::uint64_t total_requests() const { return total_requests_; }
  [[nodiscard]] std::uint64_t count(RequestOutcome outcome) const;
  [[nodiscard]] Bytes bytes_requested() const { return bytes_requested_; }
  [[nodiscard]] Bytes bytes(RequestOutcome outcome) const;

  /// Rates as fractions of total requests (0 when no requests yet).
  [[nodiscard]] double hit_rate() const;        // local + remote
  [[nodiscard]] double byte_hit_rate() const;   // bytes from group / bytes
  [[nodiscard]] double local_hit_rate() const;
  [[nodiscard]] double remote_hit_rate() const;
  [[nodiscard]] double miss_rate() const;

  /// Mean of the per-request latencies accumulated during simulation.
  [[nodiscard]] Duration measured_average_latency() const;
  /// Exact sum of per-request latencies (no averaging loss).
  [[nodiscard]] Duration total_latency() const { return latency_sum_; }

  /// Tail latency from a fixed 10 ms-resolution histogram over [0, 10 s)
  /// (values beyond 10 s report as 10 s). quantile must be in [0, 1] —
  /// anything else, including NaN, throws std::invalid_argument. Returns
  /// the upper edge of the bucket containing the quantile, i.e. the
  /// smallest 10 ms multiple L with P(latency < L) >= quantile; quantile
  /// 0.0 reports 0 ms, quantiles landing among >=10 s samples report
  /// 10'000 ms, and with no recorded requests every quantile is 0 ms.
  [[nodiscard]] double latency_percentile_ms(double quantile) const;

  /// The paper's Eq. 6 estimator under the given latency model.
  [[nodiscard]] double estimated_average_latency_ms(const LatencyModel& model) const;

  void merge(const GroupMetrics& other);

 private:
  static constexpr double kLatencyHistMaxMs = 10'000.0;
  static constexpr std::size_t kLatencyHistBuckets = 1000;  // 10 ms resolution

  std::uint64_t total_requests_ = 0;
  std::uint64_t counts_[3] = {0, 0, 0};
  Bytes bytes_requested_ = 0;
  Bytes bytes_[3] = {0, 0, 0};
  Duration latency_sum_{0};
  Histogram latency_hist_{0.0, kLatencyHistMaxMs, kLatencyHistBuckets};
};

/// A periodic snapshot of group metrics (time series for EXPERIMENTS.md).
struct MetricsSnapshot {
  TimePoint at{};
  double hit_rate = 0.0;
  double byte_hit_rate = 0.0;
  std::uint64_t total_requests = 0;
};

}  // namespace eacache
