// Analytic LRU model: Che's approximation.
//
// The paper's §4 points to a technical report [11] with a mathematical
// analysis of how the EA scheme "utilizes the aggregate memory available in
// the group more effectively". That report is not available, so we provide
// the standard computable model of the same phenomenon:
//
//   Che, Tung & Wang, "Hierarchical Web caching systems: modeling, design
//   and experimental results", JSAC 2002 — under the independent reference
//   model (IRM), an LRU cache of C objects behaves as if each object i with
//   request rate lambda_i stays cached for a fixed CHARACTERISTIC TIME T_C
//   after each reference, where T_C solves
//
//       sum_i (1 - exp(-lambda_i * T_C)) = C          (occupancy)
//
//   and the hit rate is
//
//       h = sum_i p_i * (1 - exp(-lambda_i * T_C)).
//
// For the cooperative group we model the ad-hoc and EA schemes through
// their EFFECTIVE capacity: a group whose steady-state replication factor
// is r behaves like a single LRU of aggregate/r unique slots (plus the
// intra-proxy split for the local/remote breakdown, which we do not model).
// The analysis bench checks this model against the simulator; the tests pin
// the model's own invariants.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace eacache {

struct CheModel {
  /// Request probability per object (must sum to ~1, all > 0 allowed 0).
  std::vector<double> popularity;
  /// Aggregate request rate (requests per unit time). The hit rate is
  /// invariant to this scale; it only calibrates T_C's units.
  double total_rate = 1.0;
};

struct CheResult {
  double characteristic_time = 0.0;  // T_C in the model's time units
  double hit_rate = 0.0;             // object hit rate
  double expected_occupancy = 0.0;   // equals capacity when converged
};

/// Solve Che's fixed point for an LRU cache holding `capacity_objects`
/// unit-size objects. Requires 0 < capacity_objects < number of objects
/// with non-zero popularity (otherwise the hit rate is trivially the sum of
/// cached mass / 1 and is returned without iteration).
[[nodiscard]] CheResult che_lru(const CheModel& model, double capacity_objects);

/// Convenience: Zipf(alpha) popularity over n objects.
[[nodiscard]] std::vector<double> zipf_popularity(std::size_t n, double alpha);

/// The model's prediction for a cooperative group: aggregate capacity
/// (in objects) deflated by the measured replication factor r >= 1.
[[nodiscard]] CheResult che_group(const CheModel& model, double aggregate_objects,
                                  double replication_factor);

}  // namespace eacache
