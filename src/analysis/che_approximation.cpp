#include "analysis/che_approximation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace eacache {

namespace {

double occupancy_at(const CheModel& model, double t) {
  double occupancy = 0.0;
  for (const double p : model.popularity) {
    occupancy += 1.0 - std::exp(-model.total_rate * p * t);
  }
  return occupancy;
}

double hit_rate_at(const CheModel& model, double t) {
  double hit_rate = 0.0;
  for (const double p : model.popularity) {
    hit_rate += p * (1.0 - std::exp(-model.total_rate * p * t));
  }
  return hit_rate;
}

}  // namespace

CheResult che_lru(const CheModel& model, double capacity_objects) {
  if (model.popularity.empty()) throw std::invalid_argument("che_lru: empty popularity");
  if (!(model.total_rate > 0.0)) throw std::invalid_argument("che_lru: rate must be positive");
  if (!(capacity_objects > 0.0)) {
    throw std::invalid_argument("che_lru: capacity must be positive");
  }
  double mass = 0.0;
  std::size_t support = 0;
  for (const double p : model.popularity) {
    if (p < 0.0) throw std::invalid_argument("che_lru: negative popularity");
    mass += p;
    if (p > 0.0) ++support;
  }
  if (std::abs(mass - 1.0) > 1e-6) {
    throw std::invalid_argument("che_lru: popularity must sum to 1");
  }

  CheResult result;
  if (capacity_objects >= static_cast<double>(support)) {
    // Everything with non-zero popularity fits: every re-reference hits.
    result.characteristic_time = std::numeric_limits<double>::infinity();
    result.hit_rate = 1.0;
    result.expected_occupancy = static_cast<double>(support);
    return result;
  }

  // occupancy_at is strictly increasing in t from 0 to `support`:
  // bisection after exponential bracketing.
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy_at(model, hi) < capacity_objects) {
    hi *= 2.0;
    if (hi > 1e18) throw std::runtime_error("che_lru: bracketing failed");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupancy_at(model, mid) < capacity_objects) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.characteristic_time = 0.5 * (lo + hi);
  result.hit_rate = hit_rate_at(model, result.characteristic_time);
  result.expected_occupancy = occupancy_at(model, result.characteristic_time);
  return result;
}

std::vector<double> zipf_popularity(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("zipf_popularity: n must be >= 1");
  std::vector<double> popularity(n);
  double norm = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    popularity[k] = 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    norm += popularity[k];
  }
  for (double& p : popularity) p /= norm;
  return popularity;
}

CheResult che_group(const CheModel& model, double aggregate_objects,
                    double replication_factor) {
  if (!(replication_factor >= 1.0)) {
    throw std::invalid_argument("che_group: replication factor must be >= 1");
  }
  return che_lru(model, aggregate_objects / replication_factor);
}

}  // namespace eacache
