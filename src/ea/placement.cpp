#include "ea/placement.h"

#include <stdexcept>
#include <string>

namespace eacache {

std::string_view to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kAdHoc: return "ad-hoc";
    case PlacementKind::kEa: return "ea";
    case PlacementKind::kEaHysteresis: return "ea-hysteresis";
  }
  throw std::invalid_argument("to_string: bad PlacementKind");
}

PlacementKind placement_kind_from_string(std::string_view name) {
  if (name == "ad-hoc" || name == "adhoc") return PlacementKind::kAdHoc;
  if (name == "ea") return PlacementKind::kEa;
  if (name == "ea-hysteresis") return PlacementKind::kEaHysteresis;
  throw std::invalid_argument("unknown placement scheme: " + std::string(name));
}

EaHysteresisPlacement::EaHysteresisPlacement(double factor) : factor_(factor) {
  if (!(factor >= 1.0)) {
    throw std::invalid_argument("EaHysteresisPlacement: factor must be >= 1");
  }
}

bool EaHysteresisPlacement::requester_should_cache(ExpAge requester, ExpAge responder) const {
  // Infinite responder age: only an equally uncontended (infinite) requester
  // replicates — the plain EA tie rule, which the cold-start guarantee needs.
  if (responder.is_infinite()) return requester.is_infinite();
  if (requester.is_infinite()) return true;
  return requester.millis() >= factor_ * responder.millis();
}

bool EaHysteresisPlacement::responder_should_promote(ExpAge responder, ExpAge requester) const {
  // Exact complement of the requester rule: promote iff the requester will
  // NOT keep a copy, so exactly one side preserves the document's lease.
  return !requester_should_cache(requester, responder);
}

bool EaHysteresisPlacement::parent_should_cache(ExpAge parent, ExpAge requester) const {
  // Same complement structure as the plain EA parent rule.
  return !requester_should_cache(requester, parent);
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind, double ea_hysteresis) {
  switch (kind) {
    case PlacementKind::kAdHoc: return std::make_unique<AdHocPlacement>();
    case PlacementKind::kEa: return std::make_unique<EaPlacement>();
    case PlacementKind::kEaHysteresis:
      return std::make_unique<EaHysteresisPlacement>(ea_hysteresis);
  }
  throw std::invalid_argument("make_placement: bad PlacementKind");
}

}  // namespace eacache
