#include "ea/contention.h"

#include <stdexcept>

namespace eacache {

ContentionEstimator::ContentionEstimator(AgeForm form, WindowConfig window)
    : form_(form), window_(window) {
  switch (window_.kind) {
    case WindowKind::kVictimCount:
      if (window_.victim_count == 0) {
        throw std::invalid_argument("ContentionEstimator: victim window must be >= 1");
      }
      ring_.assign(window_.victim_count, 0.0);
      break;
    case WindowKind::kTimeWindow:
      if (window_.time_window <= Duration::zero()) {
        throw std::invalid_argument("ContentionEstimator: time window must be positive");
      }
      break;
    case WindowKind::kCumulative:
      break;
  }
}

void ContentionEstimator::on_eviction(const EvictionRecord& record) {
  if (record.cause != EvictionCause::kCapacity) return;
  const double age_ms = doc_exp_age(form_, record).millis();

  ++victims_observed_;
  lifetime_sum_ms_ += age_ms;

  switch (window_.kind) {
    case WindowKind::kCumulative:
      break;
    case WindowKind::kVictimCount:
      if (ring_filled_ == ring_.size()) {
        ring_sum_ -= ring_[ring_next_];
      } else {
        ++ring_filled_;
      }
      ring_[ring_next_] = age_ms;
      ring_sum_ += age_ms;
      ring_next_ = (ring_next_ + 1) % ring_.size();
      break;
    case WindowKind::kTimeWindow:
      samples_.push_back(Sample{record.evict_time, age_ms});
      window_sum_ += age_ms;
      break;
  }
}

ExpAge ContentionEstimator::peek_expiration_age(TimePoint now) const {
  switch (window_.kind) {
    case WindowKind::kCumulative:
      return lifetime_average();
    case WindowKind::kVictimCount:
      if (ring_filled_ == 0) return ExpAge::infinite();
      return ExpAge::from_millis(ring_sum_ / static_cast<double>(ring_filled_));
    case WindowKind::kTimeWindow: {
      const TimePoint cutoff =
          now - window_.time_window >= kSimEpoch ? now - window_.time_window : kSimEpoch;
      while (!samples_.empty() && samples_.front().at < cutoff) {
        window_sum_ -= samples_.front().age_ms;
        samples_.pop_front();
      }
      if (samples_.empty()) {
        window_sum_ = 0.0;  // flush accumulated float error
        return ExpAge::infinite();
      }
      return ExpAge::from_millis(window_sum_ / static_cast<double>(samples_.size()));
    }
  }
  throw std::logic_error("ContentionEstimator: bad window kind");
}

ExpAge ContentionEstimator::cache_expiration_age(TimePoint now) const {
  obs_age_queries_.inc();
  const ExpAge age = peek_expiration_age(now);
  if (age.is_infinite()) obs_cold_age_queries_.inc();
  return age;
}

ExpAge ContentionEstimator::lifetime_average() const {
  if (victims_observed_ == 0) return ExpAge::infinite();
  return ExpAge::from_millis(lifetime_sum_ms_ / static_cast<double>(victims_observed_));
}

}  // namespace eacache
