#include "ea/expiration_age.h"

#include <cstdio>
#include <stdexcept>

namespace eacache {

std::string ExpAge::to_string() const {
  if (is_infinite()) return "inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", seconds());
  return buf;
}

ExpAge doc_exp_age_lru(const EvictionRecord& record) {
  if (record.evict_time < record.last_hit_time) {
    throw std::invalid_argument("doc_exp_age_lru: eviction precedes last hit");
  }
  return ExpAge::from_duration(record.evict_time - record.last_hit_time);
}

ExpAge doc_exp_age_lfu(const EvictionRecord& record) {
  if (record.evict_time < record.entry_time) {
    throw std::invalid_argument("doc_exp_age_lfu: eviction precedes entry");
  }
  if (record.hit_count == 0) {
    throw std::invalid_argument("doc_exp_age_lfu: zero hit count");
  }
  const auto lifetime = static_cast<double>((record.evict_time - record.entry_time).count());
  return ExpAge::from_millis(lifetime / static_cast<double>(record.hit_count));
}

ExpAge doc_exp_age(AgeForm form, const EvictionRecord& record) {
  switch (form) {
    case AgeForm::kLru: return doc_exp_age_lru(record);
    case AgeForm::kLfu: return doc_exp_age_lfu(record);
  }
  throw std::invalid_argument("doc_exp_age: bad AgeForm");
}

AgeForm age_form_for_policy(std::string_view policy_name) {
  // LRU-like policies keep a last-hit stamp; LFU-like ones keep a counter.
  // SIZE and GDS keep both in our store, so either form is computable; we
  // use the LRU form for them since their aging is recency-flavoured.
  if (policy_name == "lfu" || policy_name == "lfu-aging") return AgeForm::kLfu;
  return AgeForm::kLru;
}

}  // namespace eacache
