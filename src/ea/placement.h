// Document placement policies — the paper's contribution (EA) and the
// conventional baseline (ad-hoc).
//
// A placement policy answers four questions that arise while a cache group
// serves a request (paper section 3.3):
//
//  1. requester_should_cache  — after fetching a document from another cache
//     (sibling remote hit, or a parent that resolved a miss), should the
//     requester keep a local copy?
//  2. responder_should_promote — after serving a sibling, should the
//     responder give its own copy a fresh lease of life (LRU head / LFU
//     counter increment)?
//  3. parent_should_cache — in the hierarchical architecture, should a
//     parent that fetched from the origin on a child's behalf keep a copy?
//  4. requester_should_cache_after_origin_fetch — after a group-wide miss
//     served directly from the origin, should the requester cache it?
//
// The decisions are pure functions of the two piggybacked cache expiration
// ages, so both schemes are trivially architecture- and replacement-policy-
// independent — a point the paper emphasises.
//
// Tie-break note (paper sections 3.3 vs 3.4): §3.4 states the requester
// stores when its age is "greater than OR EQUAL"; this also makes a
// fully-cold group (both ages infinite) behave exactly like ad-hoc, which
// the "never worse than ad-hoc" argument requires. The responder promotes
// only on STRICT greater — on ties the new copy wins and the old one ages
// out. We follow §3.4.
#pragma once

#include <memory>
#include <string_view>

#include "ea/expiration_age.h"

namespace eacache {

enum class PlacementKind { kAdHoc, kEa, kEaHysteresis };

[[nodiscard]] std::string_view to_string(PlacementKind kind);
[[nodiscard]] PlacementKind placement_kind_from_string(std::string_view name);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual bool requester_should_cache(ExpAge requester,
                                                    ExpAge responder) const = 0;
  [[nodiscard]] virtual bool responder_should_promote(ExpAge responder,
                                                      ExpAge requester) const = 0;
  [[nodiscard]] virtual bool parent_should_cache(ExpAge parent, ExpAge requester) const = 0;
  [[nodiscard]] virtual bool requester_should_cache_after_origin_fetch() const = 0;

  [[nodiscard]] virtual PlacementKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The conventional scheme: every fetch is cached where it was requested,
/// and serving a remote hit rejuvenates the responder's copy.
class AdHocPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] bool requester_should_cache(ExpAge, ExpAge) const override { return true; }
  [[nodiscard]] bool responder_should_promote(ExpAge, ExpAge) const override { return true; }
  [[nodiscard]] bool parent_should_cache(ExpAge, ExpAge) const override { return true; }
  [[nodiscard]] bool requester_should_cache_after_origin_fetch() const override { return true; }
  [[nodiscard]] PlacementKind kind() const override { return PlacementKind::kAdHoc; }
  [[nodiscard]] std::string_view name() const override { return "ad-hoc"; }
};

/// The Expiration-Age scheme (paper section 3.3).
class EaPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] bool requester_should_cache(ExpAge requester, ExpAge responder) const override {
    return requester >= responder;
  }
  [[nodiscard]] bool responder_should_promote(ExpAge responder, ExpAge requester) const override {
    return responder > requester;
  }
  [[nodiscard]] bool parent_should_cache(ExpAge parent, ExpAge requester) const override {
    return parent > requester;
  }
  [[nodiscard]] bool requester_should_cache_after_origin_fetch() const override { return true; }
  [[nodiscard]] PlacementKind kind() const override { return PlacementKind::kEa; }
  [[nodiscard]] std::string_view name() const override { return "ea"; }
};

/// EA with hysteresis — an extension the paper's tie-break discussion
/// invites: the requester replicates only when its copy would survive
/// MATERIALLY longer (req >= factor * resp), not merely marginally. A
/// factor of 1 degenerates to the plain EA scheme; larger factors trade
/// local hits for fewer replicas. The responder promotion rule stays the
/// exact complement so the no-copy-lost invariant holds: the responder
/// promotes precisely when the requester declined.
class EaHysteresisPlacement final : public PlacementPolicy {
 public:
  /// Requires factor >= 1 (throws std::invalid_argument otherwise).
  explicit EaHysteresisPlacement(double factor);

  [[nodiscard]] bool requester_should_cache(ExpAge requester, ExpAge responder) const override;
  [[nodiscard]] bool responder_should_promote(ExpAge responder, ExpAge requester) const override;
  [[nodiscard]] bool parent_should_cache(ExpAge parent, ExpAge requester) const override;
  [[nodiscard]] bool requester_should_cache_after_origin_fetch() const override { return true; }
  [[nodiscard]] PlacementKind kind() const override { return PlacementKind::kEaHysteresis; }
  [[nodiscard]] std::string_view name() const override { return "ea-hysteresis"; }

  [[nodiscard]] double factor() const { return factor_; }

 private:
  double factor_;
};

/// `ea_hysteresis` applies only to kEaHysteresis.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind,
                                                              double ea_hysteresis = 2.0);

}  // namespace eacache
