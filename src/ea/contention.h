// ContentionEstimator: maintains CacheExpAge(C, Ti, Tj) (paper Eq. 5) from
// the cache's eviction stream.
//
// The paper defines the cache expiration age over "a finite time duration"
// without pinning the window down; a production proxy needs a concrete
// estimator. We provide three, selectable per experiment (ABL-WINDOW in
// DESIGN.md benchmarks the choice):
//
//   kCumulative   — all victims since start (what Table 1 reports);
//   kVictimCount  — mean over the last N victims (O(1) ring buffer);
//   kTimeWindow   — mean over victims evicted in the last W of simulated
//                   time (deque pruned on read).
//
// A cache with no victims in the window reports ExpAge::infinite(): it has
// exhibited no contention, so any peer's copy is at least as endangered.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.h"
#include "ea/expiration_age.h"
#include "obs/metric_registry.h"
#include "storage/eviction.h"

namespace eacache {

enum class WindowKind { kCumulative, kVictimCount, kTimeWindow };

struct WindowConfig {
  WindowKind kind = WindowKind::kVictimCount;
  std::size_t victim_count = 256;       // for kVictimCount
  Duration time_window = hours(6);      // for kTimeWindow

  [[nodiscard]] static WindowConfig cumulative() { return {WindowKind::kCumulative, 0, {}}; }
  [[nodiscard]] static WindowConfig victims(std::size_t n) {
    return {WindowKind::kVictimCount, n, {}};
  }
  [[nodiscard]] static WindowConfig time(Duration w) {
    return {WindowKind::kTimeWindow, 0, w};
  }
};

class ContentionEstimator final : public EvictionObserver {
 public:
  ContentionEstimator(AgeForm form, WindowConfig window);

  /// EvictionObserver: feed one victim. Only capacity evictions measure
  /// contention; explicit removals (invalidations) are not contention
  /// signals and are ignored.
  void on_eviction(const EvictionRecord& record) override;

  /// CacheExpAge at simulated time `now` (needed by the time window).
  [[nodiscard]] ExpAge cache_expiration_age(TimePoint now) const;

  /// cache_expiration_age WITHOUT the ea.age_queries counter increments:
  /// the daemon's live stats seam reads the age through this so a telemetry
  /// sample never perturbs the protocol counters (smoke-replay result
  /// byte-identity depends on it). Time-window pruning still happens — it is
  /// idempotent at a given `now` and a later protocol query would prune the
  /// same samples anyway.
  [[nodiscard]] ExpAge peek_expiration_age(TimePoint now) const;

  /// Total victims ever observed (diagnostics).
  [[nodiscard]] std::uint64_t victims_observed() const { return victims_observed_; }

  /// Mean DocExpAge over ALL victims since start, regardless of window —
  /// this is the "Average Cache Expiration Age" the paper's Table 1 reports.
  [[nodiscard]] ExpAge lifetime_average() const;

  [[nodiscard]] AgeForm form() const { return form_; }
  [[nodiscard]] const WindowConfig& window() const { return window_; }

  /// Optional registry instrumentation (null handles = off): every
  /// CacheExpAge read, and the subset answered ExpAge::infinite() (cold /
  /// contention-free cache — the EA rules treat those as "place anywhere").
  void bind_counters(MetricRegistry::Counter age_queries,
                     MetricRegistry::Counter cold_age_queries) {
    obs_age_queries_ = age_queries;
    obs_cold_age_queries_ = cold_age_queries;
  }

 private:
  struct Sample {
    TimePoint at;
    double age_ms;
  };

  AgeForm form_;
  WindowConfig window_;

  // kVictimCount: ring buffer with running sum.
  std::vector<double> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_filled_ = 0;
  double ring_sum_ = 0.0;

  // kTimeWindow: monotone deque of samples; pruned lazily on read.
  mutable std::deque<Sample> samples_;
  mutable double window_sum_ = 0.0;

  // Lifetime aggregates (also serve kCumulative).
  std::uint64_t victims_observed_ = 0;
  double lifetime_sum_ms_ = 0.0;

  MetricRegistry::Counter obs_age_queries_;
  MetricRegistry::Counter obs_cold_age_queries_;
};

}  // namespace eacache
