// Document and cache expiration ages — the paper's central quantities.
//
// DocExpAge(D, C)  (paper Eq. 1-3):
//   LRU form:  evict_time - last_hit_time          (Eq. 2)
//   LFU form:  (evict_time - entry_time) / HIT_COUNTER
// Both estimate how long a document lives in a cache after its last hit.
//
// CacheExpAge(C, Ti, Tj)  (paper Eq. 5): the mean DocExpAge over the
// victims evicted from C during a finite window. High value = low disk-space
// contention.
//
// A cache that has evicted nothing has *unobserved* (effectively infinite)
// expiration age: it is experiencing no contention at all. We model that
// explicitly with ExpAge::infinite() so that comparisons in the placement
// rules do the right thing for cold caches — a cold group degenerates to
// exactly the ad-hoc scheme, which preserves the paper's "never worse than
// ad-hoc" guarantee.
#pragma once

#include <compare>
#include <limits>
#include <string>

#include "common/types.h"
#include "storage/eviction.h"

namespace eacache {

/// Which DocExpAge formula applies — must match the cache's replacement
/// policy family (paper Eq. 1 dispatches on the policy).
enum class AgeForm { kLru, kLfu };

/// An expiration age: a non-negative, possibly fractional duration in
/// milliseconds, or +infinity for "no contention observed".
class ExpAge {
 public:
  constexpr ExpAge() : ms_(0.0) {}

  [[nodiscard]] static constexpr ExpAge from_millis(double ms) { return ExpAge(ms); }
  [[nodiscard]] static constexpr ExpAge from_duration(Duration d) {
    return ExpAge(static_cast<double>(d.count()));
  }
  [[nodiscard]] static constexpr ExpAge infinite() {
    return ExpAge(std::numeric_limits<double>::infinity());
  }

  [[nodiscard]] constexpr double millis() const { return ms_; }
  [[nodiscard]] constexpr double seconds() const { return ms_ / 1000.0; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ms_ == std::numeric_limits<double>::infinity();
  }

  friend constexpr auto operator<=>(const ExpAge&, const ExpAge&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr ExpAge(double ms) : ms_(ms) {}
  double ms_;
};

/// DocExpAge under LRU (paper Eq. 2).
[[nodiscard]] ExpAge doc_exp_age_lru(const EvictionRecord& record);

/// DocExpAge under LFU (paper section 3.2.2).
[[nodiscard]] ExpAge doc_exp_age_lfu(const EvictionRecord& record);

/// Dispatch on the age form (paper Eq. 1).
[[nodiscard]] ExpAge doc_exp_age(AgeForm form, const EvictionRecord& record);

/// The DocExpAge form that matches a replacement-policy kind.
[[nodiscard]] AgeForm age_form_for_policy(std::string_view policy_name);

}  // namespace eacache
