#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/thread_annotations.h"

namespace eacache {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// The injectable sink plus the lock that both guards the slot and
/// serializes the final write of each line (one locked write per line is
/// the logger's whole thread-safety story — see common/logging.h).
struct SinkSlot {
  static SinkSlot& instance() {
    static SinkSlot slot;
    return slot;
  }

  Mutex mutex;
  LogSink sink EACACHE_GUARDED_BY(mutex);
};

thread_local std::string t_thread_tag;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_thread_tag(std::string tag) { t_thread_tag = std::move(tag); }

const std::string& log_thread_tag() { return t_thread_tag; }

ScopedLogTag::ScopedLogTag(std::string tag) : previous_(std::move(t_thread_tag)) {
  t_thread_tag = std::move(tag);
}

ScopedLogTag::~ScopedLogTag() { t_thread_tag = std::move(previous_); }

void set_log_sink(LogSink sink) {
  SinkSlot& slot = SinkSlot::instance();
  MutexLock lock(slot.mutex);
  slot.sink = std::move(sink);
}

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;

  // Assemble the whole line outside the lock; the lock then covers exactly
  // one write, so lines from concurrent sweep workers never interleave.
  std::string line;
  line.reserve(component.size() + message.size() + t_thread_tag.size() + 16);
  line += '[';
  line += level_name(level);
  line += ']';
  if (!t_thread_tag.empty()) {
    line += " [";
    line += t_thread_tag;
    line += ']';
  }
  line += ' ';
  line += component;
  line += ": ";
  line += message;

  SinkSlot& slot = SinkSlot::instance();
  MutexLock lock(slot.mutex);
  if (slot.sink) {
    slot.sink(level, line);
    return;
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace eacache
