#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace eacache {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace eacache
