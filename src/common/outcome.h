// How a client request was resolved — the paper's three-way split (§4.2
// footnote 1): local hit, remote hit (served by another cache in the group),
// or miss (served by the origin server).
#pragma once

#include <string_view>

namespace eacache {

enum class RequestOutcome { kLocalHit, kRemoteHit, kMiss };

[[nodiscard]] constexpr std::string_view to_string(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kLocalHit: return "local-hit";
    case RequestOutcome::kRemoteHit: return "remote-hit";
    case RequestOutcome::kMiss: return "miss";
  }
  return "?";
}

}  // namespace eacache
