// Tiny leveled logger. The simulator is deterministic and single-threaded,
// so the logger stays simple: a global level, output to stderr, no locking
// needed for correctness of the simulation itself (stderr writes are atomic
// enough for diagnostics).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace eacache {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Low-level sink. Prefer the EACACHE_LOG_* macros below.
void log_message(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace eacache

// for-loop form rather than the classic if/else: a log macro inside an
// unbraced `if` must not capture the surrounding `else` (dangling-else).
// The loop runs the stream expression exactly once when enabled and never
// constructs the LogLine when filtered out.
#define EACACHE_LOG(level, component)                                             \
  for (bool eacache_log_once =                                                    \
           static_cast<int>(level) >= static_cast<int>(::eacache::log_level());   \
       eacache_log_once; eacache_log_once = false)                                \
  ::eacache::detail::LogLine(level, component)

#define EACACHE_LOG_DEBUG(component) EACACHE_LOG(::eacache::LogLevel::kDebug, component)
#define EACACHE_LOG_INFO(component) EACACHE_LOG(::eacache::LogLevel::kInfo, component)
#define EACACHE_LOG_WARN(component) EACACHE_LOG(::eacache::LogLevel::kWarn, component)
#define EACACHE_LOG_ERROR(component) EACACHE_LOG(::eacache::LogLevel::kError, component)
