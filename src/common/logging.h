// Tiny leveled logger, safe under the sweep thread pool. Each statement is
// buffered into a single line (level, optional per-thread worker/job tag,
// component, message) and written with one locked call, so concurrent
// workers never interleave partial lines. Sweep workers label their lines
// via set_log_thread_tag(); tests can capture output via set_log_sink().
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace eacache {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Per-thread tag included in every line this thread logs, e.g. "w2/j17"
/// for sweep worker 2 running job 17. Empty (the default) omits the tag.
void set_log_thread_tag(std::string tag);
[[nodiscard]] const std::string& log_thread_tag();

/// RAII tag for a scope (restores the previous tag on destruction).
class ScopedLogTag {
 public:
  explicit ScopedLogTag(std::string tag);
  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;
  ~ScopedLogTag();

 private:
  std::string previous_;
};

/// Replaces stderr with a custom sink; the sink receives each fully
/// formatted line (no trailing newline) under the logger's lock, so it
/// needs no synchronization of its own. Pass nullptr to restore stderr.
using LogSink = std::function<void(LogLevel level, std::string_view line)>;
void set_log_sink(LogSink sink);

/// Low-level entry point. Prefer the EACACHE_LOG_* macros below.
void log_message(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace eacache

// for-loop form rather than the classic if/else: a log macro inside an
// unbraced `if` must not capture the surrounding `else` (dangling-else).
// The loop runs the stream expression exactly once when enabled and never
// constructs the LogLine when filtered out.
#define EACACHE_LOG(level, component)                                             \
  for (bool eacache_log_once =                                                    \
           static_cast<int>(level) >= static_cast<int>(::eacache::log_level());   \
       eacache_log_once; eacache_log_once = false)                                \
  ::eacache::detail::LogLine(level, component)

#define EACACHE_LOG_DEBUG(component) EACACHE_LOG(::eacache::LogLevel::kDebug, component)
#define EACACHE_LOG_INFO(component) EACACHE_LOG(::eacache::LogLevel::kInfo, component)
#define EACACHE_LOG_WARN(component) EACACHE_LOG(::eacache::LogLevel::kWarn, component)
#define EACACHE_LOG_ERROR(component) EACACHE_LOG(::eacache::LogLevel::kError, component)
