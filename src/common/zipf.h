// Zipf-distributed sampling over ranks {0, 1, ..., n-1}.
//
// Web-document popularity is famously Zipf-like; Cunha et al. measured an
// exponent near 0.7-0.8 for the Boston University traces used by the paper.
// The sampler uses rejection-inversion (W. Hormann & G. Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", TOMACS 1996), which is O(1) per sample for any n and any
// exponent s > 0, s != 1 handled too.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace eacache {

class ZipfSampler {
 public:
  /// Distribution over ranks 0..n-1 with P(rank k) proportional to
  /// 1 / (k+1)^s. Requires n >= 1 and s > 0.
  ZipfSampler(std::uint64_t n, double s);

  /// Draw one rank in [0, n). Rank 0 is the most popular item.
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double exponent() const { return s_; }

  /// Exact probability of a given rank (for tests and analytics).
  [[nodiscard]] double pmf(std::uint64_t rank) const;

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double threshold_;             // Hormann acceptance threshold
  double generalized_harmonic_;  // normalisation constant for pmf()
};

}  // namespace eacache
