// Streaming statistics helpers used by the metrics layer and by tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace eacache {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double total = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    mean_ = (n1 * mean_ + n2 * other.mean_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); overflow/underflow tracked
/// separately. Used for document-size and latency distributions in reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                                static_cast<double>(counts_.size()));
      ++counts_[std::min(idx, counts_.size() - 1)];
    }
    ++total_;
    sum_ += x;
  }

  /// Merge another histogram with IDENTICAL geometry (throws otherwise).
  void merge(const Histogram& other) {
    if (other.lo_ != lo_ || other.hi_ != hi_ || other.counts_.size() != counts_.size()) {
      throw std::invalid_argument("Histogram::merge: geometry mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_ += other.sum_;
  }

  /// Smallest value V (at bucket-width resolution) with
  /// P(sample < V) >= quantile. Underflow counts as lo_, overflow as hi_.
  [[nodiscard]] double percentile(double quantile) const {
    if (total_ == 0) return lo_;
    const double target = quantile * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target) return lo_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cumulative += static_cast<double>(counts_[i]);
      if (cumulative >= target) return lo_ + width * static_cast<double>(i + 1);
    }
    return hi_;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t num_buckets() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Sum of every observed sample (including under/overflow), for
  /// Prometheus-style `_sum` exposition; 0 on an empty histogram.
  [[nodiscard]] double sum() const { return sum_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace eacache
