// Portable Clang Thread Safety Analysis annotations plus the annotated
// synchronization primitives the rest of the tree locks with.
//
// Under Clang, the EACACHE_* macros expand to the attributes consumed by
// -Wthread-safety (see DESIGN.md §11): the compiler then PROVES, per
// translation unit, that every EACACHE_GUARDED_BY member is only touched
// with its mutex held and that every EACACHE_REQUIRES contract is honoured
// at each call site. Under any other compiler they expand to nothing, so
// GCC builds are byte-identical to the unannotated tree.
//
// std::mutex carries no capability attributes in libstdc++, which makes it
// invisible to the analysis — hence the thin Mutex/MutexLock/CondVar
// wrappers below. They add no state and no behaviour beyond std::mutex /
// std::lock_guard / std::condition_variable_any; they exist only so the
// analysis can see acquire/release edges.
//
// Convention (enforced by the EACACHE_WERROR_THREAD_SAFETY build, see the
// top-level CMakeLists.txt): every mutex-protected member is declared with
// EACACHE_GUARDED_BY, every function that expects the caller to hold a lock
// is declared with EACACHE_REQUIRES, and every function that takes a lock
// itself is declared with EACACHE_EXCLUDES so the analysis can reject
// self-deadlock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define EACACHE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EACACHE_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a capability (lockable) the analysis tracks.
#define EACACHE_CAPABILITY(x) EACACHE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define EACACHE_SCOPED_CAPABILITY EACACHE_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while `x` is held.
#define EACACHE_GUARDED_BY(x) EACACHE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be touched while `x` is held.
#define EACACHE_PT_GUARDED_BY(x) EACACHE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must already hold the listed capabilities.
#define EACACHE_REQUIRES(...) \
  EACACHE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define EACACHE_ACQUIRE(...) \
  EACACHE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define EACACHE_RELEASE(...) \
  EACACHE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define EACACHE_TRY_ACQUIRE(result, ...) \
  EACACHE_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define EACACHE_EXCLUDES(...) EACACHE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding something.
#define EACACHE_RETURN_CAPABILITY(x) EACACHE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define EACACHE_NO_THREAD_SAFETY_ANALYSIS \
  EACACHE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace eacache {

/// std::mutex made visible to the analysis. Satisfies BasicLockable /
/// Lockable, so it composes with std::unique_lock and
/// std::condition_variable_any where needed.
class EACACHE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EACACHE_ACQUIRE() { mutex_.lock(); }
  void unlock() EACACHE_RELEASE() { mutex_.unlock(); }
  bool try_lock() EACACHE_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped acquire.
class EACACHE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EACACHE_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EACACHE_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a Mutex. Spurious wakeups are NOT
/// filtered: call wait() in a `while (!predicate)` loop, with the loop body
/// inside the annotated critical section so the analysis checks the
/// predicate's member reads against EACACHE_GUARDED_BY. (No predicate
/// overload on purpose — a lambda predicate would read guarded members from
/// an unannotated scope the analysis rejects.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before returning;
  /// externally the caller's hold on `mutex` is continuous, which is
  /// exactly what EACACHE_REQUIRES models.
  void wait(Mutex& mutex) EACACHE_REQUIRES(mutex) { cv_.wait(mutex); }

  /// Timed wait: like wait(), but gives up after `timeout`. Returns false
  /// iff the timeout elapsed (subject to the same spurious-wakeup caveat —
  /// always recheck the predicate). Used by the in-memory transport's
  /// deadline receive.
  bool wait_for(Mutex& mutex, std::chrono::nanoseconds timeout) EACACHE_REQUIRES(mutex) {
    return cv_.wait_for(mutex, timeout) == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace eacache
