// Core vocabulary types shared by every eacache module.
//
// All simulation time is virtual: a single discrete-event clock measured in
// milliseconds. We wrap std::chrono so arithmetic is type-checked and the
// millisecond resolution is explicit at every call site.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace eacache {

/// Tag clock for simulated time. Never reads the wall clock; the event
/// engine is the only source of "now".
struct SimClock {
  using rep = std::int64_t;
  using period = std::milli;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<SimClock, duration>;
  static constexpr bool is_steady = true;
};

/// Simulated duration, millisecond resolution.
using Duration = SimClock::duration;
/// Simulated instant, millisecond resolution.
using TimePoint = SimClock::time_point;

/// The origin of simulated time. Every simulation starts here.
inline constexpr TimePoint kSimEpoch{};

/// A sentinel "end of time" useful for open-ended windows.
inline constexpr TimePoint kSimTimeMax{Duration{std::numeric_limits<SimClock::rep>::max()}};

/// Convenience literals-ish helpers (constexpr, no UDL to keep call sites
/// explicit about units).
[[nodiscard]] constexpr Duration msec(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration sec(std::int64_t v) { return Duration{v * 1000}; }
[[nodiscard]] constexpr Duration minutes(std::int64_t v) { return sec(v * 60); }
[[nodiscard]] constexpr Duration hours(std::int64_t v) { return minutes(v * 60); }

/// Fractional seconds view of a Duration (for reporting only).
[[nodiscard]] constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1000.0;
}

/// Identifies a document (a URL in web-caching terms). Stable across the
/// whole simulation; produced by the trace layer (hash of the URL or a
/// synthetic index).
using DocumentId = std::uint64_t;

/// Identifies a proxy cache within a group.
using ProxyId = std::uint32_t;

/// Identifies a client/user issuing requests.
using UserId = std::uint32_t;

/// Byte counts. Signed arithmetic is avoided; sizes are always non-negative.
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// The paper uses decimal-looking labels (100KB, 1MB, ...) for aggregate cache
// sizes; we follow the common proxy convention of binary units.
[[nodiscard]] constexpr Bytes kib(std::uint64_t v) { return v * kKiB; }
[[nodiscard]] constexpr Bytes mib(std::uint64_t v) { return v * kMiB; }
[[nodiscard]] constexpr Bytes gib(std::uint64_t v) { return v * kGiB; }

/// Human-readable rendering of a byte count ("100KiB", "1MiB", "3.2GiB").
[[nodiscard]] std::string format_bytes(Bytes n);

/// Human-readable rendering of a duration ("1.25s", "342ms").
[[nodiscard]] std::string format_duration(Duration d);

}  // namespace eacache
