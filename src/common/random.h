// Deterministic pseudo-random number generation for reproducible simulation.
//
// We deliberately do NOT use std::mt19937 + std::*_distribution: the standard
// distributions are implementation-defined, so results would differ between
// libstdc++ and libc++. Everything here is bit-exact across platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace eacache {

/// SplitMix64: used to expand a single seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1). 53-bit mantissa construction — portable and exact.
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method is
  /// overkill here; simple rejection keeps it unbiased and obvious.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double next_normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Log-normal with parameters of the underlying normal.
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_normal());
  }

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double next_pareto(double xm, double alpha) {
    const double u = 1.0 - next_double();  // in (0, 1]
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Exponential with the given rate (events per unit).
  double next_exponential(double rate) {
    const double u = 1.0 - next_double();  // avoid log(0)
    return -std::log(u) / rate;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace eacache
