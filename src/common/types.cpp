#include "common/types.h"

#include <array>
#include <cstdio>

namespace eacache {

std::string format_bytes(Bytes n) {
  struct Unit {
    Bytes scale;
    const char* suffix;
  };
  static constexpr std::array<Unit, 3> units{{{kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}}};
  for (const auto& [scale, suffix] : units) {
    if (n >= scale) {
      const double v = static_cast<double>(n) / static_cast<double>(scale);
      char buf[32];
      if (n % scale == 0) {
        std::snprintf(buf, sizeof(buf), "%lld%s", static_cast<long long>(n / scale), suffix);
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
      }
      return buf;
    }
  }
  return std::to_string(n) + "B";
}

std::string format_duration(Duration d) {
  const auto ms = d.count();
  char buf[32];
  if (ms >= 1000 && ms % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(ms / 1000));
  } else if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ms) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(ms));
  }
  return buf;
}

}  // namespace eacache
