#include "common/config.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/thread_annotations.h"

namespace eacache {

namespace {

/// Process-wide default for resolve_job_count (0 = unset). Mutex-guarded:
/// benches set it from config handling on the main thread while sweep
/// pools from an earlier run may still be resolving their worker counts.
class JobCountDefault {
 public:
  static JobCountDefault& instance() {
    static JobCountDefault slot;
    return slot;
  }

  void set(std::size_t jobs) EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    jobs_ = jobs;
  }

  [[nodiscard]] std::size_t get() const EACACHE_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return jobs_;
  }

 private:
  JobCountDefault() = default;

  mutable Mutex mutex_;
  std::size_t jobs_ EACACHE_GUARDED_BY(mutex_) = 0;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_dbl(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is not universally available; strtod via a
  // bounded copy keeps this portable.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) return std::nullopt;
  return v;
}

// Splits "123suffix" into the numeric part and the (lowercased) suffix.
struct NumberSuffix {
  double value;
  std::string suffix;
};

std::optional<NumberSuffix> split_number_suffix(std::string_view s) {
  s = trim(s);
  std::size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) != 0 || s[i] == '.' || s[i] == '-')) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  const auto value = parse_dbl(s.substr(0, i));
  if (!value) return std::nullopt;
  return NumberSuffix{*value, lower(trim(s.substr(i)))};
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#' || stripped.front() == ';') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("Config: missing '=' on line " + std::to_string(line_no));
    }
    const std::string_view key = trim(stripped.substr(0, eq));
    const std::string_view value = trim(stripped.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " + std::to_string(line_no));
    }
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Config::set(std::string key, std::string value) {
  entries_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const { return entries_.count(key) > 0; }

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(std::string_view key, std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto v = parse_int(*raw);
  if (!v) throw std::runtime_error("Config: key '" + std::string(key) + "' is not an integer");
  return *v;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto v = parse_dbl(*raw);
  if (!v) throw std::runtime_error("Config: key '" + std::string(key) + "' is not a number");
  return *v;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const std::string v = lower(trim(*raw));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("Config: key '" + std::string(key) + "' is not a boolean");
}

Bytes Config::get_bytes(std::string_view key, Bytes fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto v = parse_bytes(*raw);
  if (!v) throw std::runtime_error("Config: key '" + std::string(key) + "' is not a byte size");
  return *v;
}

Duration Config::get_duration(std::string_view key, Duration fallback) const {
  const auto raw = get(key);
  if (!raw) return fallback;
  const auto v = parse_duration(*raw);
  if (!v) throw std::runtime_error("Config: key '" + std::string(key) + "' is not a duration");
  return *v;
}

std::optional<Bytes> Config::parse_bytes(std::string_view text) {
  const auto parts = split_number_suffix(text);
  if (!parts || parts->value < 0) return std::nullopt;
  double scale = 1.0;
  const std::string& sfx = parts->suffix;
  if (sfx.empty() || sfx == "b") {
    scale = 1.0;
  } else if (sfx == "kib" || sfx == "kb" || sfx == "k") {
    scale = static_cast<double>(kKiB);
  } else if (sfx == "mib" || sfx == "mb" || sfx == "m") {
    scale = static_cast<double>(kMiB);
  } else if (sfx == "gib" || sfx == "gb" || sfx == "g") {
    scale = static_cast<double>(kGiB);
  } else {
    return std::nullopt;
  }
  return static_cast<Bytes>(parts->value * scale);
}

std::optional<Duration> Config::parse_duration(std::string_view text) {
  const auto parts = split_number_suffix(text);
  if (!parts) return std::nullopt;
  double ms = 0.0;
  const std::string& sfx = parts->suffix;
  if (sfx.empty() || sfx == "ms") {
    ms = parts->value;
  } else if (sfx == "s") {
    ms = parts->value * 1000.0;
  } else if (sfx == "m" || sfx == "min") {
    ms = parts->value * 60.0 * 1000.0;
  } else if (sfx == "h") {
    ms = parts->value * 3600.0 * 1000.0;
  } else {
    return std::nullopt;
  }
  return Duration{static_cast<SimClock::rep>(ms)};
}

std::size_t resolve_job_count(std::size_t preferred) {
  if (preferred > 0) return preferred;
  if (const char* env = std::getenv("EACACHE_JOBS")) {
    const auto parsed = parse_int(env);
    if (parsed && *parsed > 0) return static_cast<std::size_t>(*parsed);
  }
  if (const std::size_t configured = JobCountDefault::instance().get(); configured > 0) {
    return configured;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

void set_default_job_count(std::size_t jobs) { JobCountDefault::instance().set(jobs); }

}  // namespace eacache
