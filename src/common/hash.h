// Small, dependency-free hashing helpers.
#pragma once

#include <cstdint>
#include <string_view>

namespace eacache {

/// FNV-1a 64-bit. Used to map URLs to DocumentIds and users to proxies.
/// Stable across platforms and runs (unlike std::hash).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Integer finalizer (SplitMix64's mixing function). Good avalanche; used to
/// turn sequential ids into well-spread hash values.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// boost-style hash combining.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace eacache
