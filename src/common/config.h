// Minimal key=value configuration files for the example programs and the
// experiment harness. Format:
//
//   # comment
//   scheme = ea
//   group_size = 4
//   aggregate_capacity = 10MiB
//
// Values keep their raw text; typed getters parse on demand so a config can
// be shared between tools that care about different keys.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace eacache {

class Config {
 public:
  Config() = default;

  /// Parse from text; throws std::runtime_error with a line number on
  /// malformed input.
  [[nodiscard]] static Config parse(std::string_view text);

  /// Load from a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static Config load(const std::string& path);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  /// Typed getters: return the fallback when the key is absent; throw
  /// std::runtime_error when present but unparseable.
  [[nodiscard]] std::string get_string(std::string_view key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  /// Accepts "4096", "100KiB", "1MiB", "2GiB" (also KB/MB/GB as binary).
  [[nodiscard]] Bytes get_bytes(std::string_view key, Bytes fallback) const;
  /// Accepts "250ms", "3s", "5m", "1h" or a bare millisecond count.
  [[nodiscard]] Duration get_duration(std::string_view key, Duration fallback) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

  /// Standalone parsers, exposed for reuse by CLI flag handling.
  [[nodiscard]] static std::optional<Bytes> parse_bytes(std::string_view text);
  [[nodiscard]] static std::optional<Duration> parse_duration(std::string_view text);

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

/// Worker-thread count for sweep execution. Resolution order:
///   1. `preferred` when non-zero (a `--jobs N` flag or `jobs =` config key),
///   2. the EACACHE_JOBS environment variable (must be a positive integer;
///      anything else is ignored),
///   3. the process-wide default installed by set_default_job_count(),
///   4. std::thread::hardware_concurrency().
/// Always returns at least 1.
[[nodiscard]] std::size_t resolve_job_count(std::size_t preferred = 0);

/// Installs a process-wide default consulted by resolve_job_count() after
/// the explicit argument and the environment (a harness applying a `jobs =`
/// config key once, instead of threading it through every SweepOptions).
/// Thread-safe — the slot is mutex-guarded (common/thread_annotations.h),
/// so a harness may retune it between sweeps while worker pools from a
/// previous run are still winding down. Pass 0 to clear.
void set_default_job_count(std::size_t jobs);

}  // namespace eacache
