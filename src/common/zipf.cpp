#include "common/zipf.h"

#include <cmath>
#include <stdexcept>

namespace eacache {

namespace {

// ((1+t)^(1-s) - 1) / (1-s), with the s == 1 limit log1p(t). Numerically
// stable form used by Hormann's rejection-inversion.
double pow_ratio(double t, double s) {
  const double one_minus_s = 1.0 - s;
  if (std::abs(one_minus_s) < 1e-12) return std::log1p(t);
  return std::expm1(one_minus_s * std::log1p(t)) / one_minus_s;
}

// Inverse of pow_ratio in t for fixed s.
double pow_ratio_inverse(double x, double s) {
  const double one_minus_s = 1.0 - s;
  if (std::abs(one_minus_s) < 1e-12) return std::expm1(x);
  return std::expm1(std::log1p(x * one_minus_s) / one_minus_s);
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: exponent must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_num_elements_ = h_integral(static_cast<double>(n) + 0.5);
  // Acceptance threshold from Hormann & Derflinger (1996), as used by
  // Apache Commons Math's RejectionInversionZipfSampler.
  threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  generalized_harmonic_ = 0.0;
  // For pmf() we need the exact normalisation. O(n) once at construction is
  // fine for the universe sizes the simulator uses; guard very large n.
  if (n <= (1u << 24)) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      generalized_harmonic_ += 1.0 / std::pow(static_cast<double>(k), s);
    }
  } else {
    generalized_harmonic_ = -1.0;  // pmf() unavailable
  }
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

// H(x): antiderivative of h with H(1) = 0.
double ZipfSampler::h_integral(double x) const { return pow_ratio(x - 1.0, s_); }

double ZipfSampler::h_integral_inverse(double x) const {
  double t = pow_ratio_inverse(x, s_);
  if (t < -1.0) t = -1.0;
  return 1.0 + t;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u = h_integral_num_elements_ +
                     rng.next_double() * (h_integral_x1_ - h_integral_num_elements_);
    // u is uniform in (h_integral_x1_, h_integral_num_elements_].
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    const auto n_as_double = static_cast<double>(n_);
    if (kd > n_as_double) kd = n_as_double;
    if (kd - x <= threshold_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return static_cast<std::uint64_t>(kd) - 1;  // ranks are 0-based externally
    }
  }
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  if (rank >= n_ || generalized_harmonic_ <= 0.0) return 0.0;
  return 1.0 / (std::pow(static_cast<double>(rank + 1), s_) * generalized_harmonic_);
}

}  // namespace eacache
